package qpack

import (
	"bytes"
	"errors"
	"testing"

	"respectorigin/internal/hpack"
)

func TestStaticTableShape(t *testing.T) {
	if n := StaticTableSize(); n != 99 {
		t.Fatalf("static table has %d entries, want 99 (RFC 9204 Appendix A)", n)
	}
	// Spot-check normative indices.
	checks := map[int]hpack.HeaderField{
		0:  {Name: ":authority"},
		1:  {Name: ":path", Value: "/"},
		17: {Name: ":method", Value: "GET"},
		25: {Name: ":status", Value: "200"},
		69: {Name: ":status", Value: "421"},
		98: {Name: "x-frame-options", Value: "sameorigin"},
	}
	for i, want := range checks {
		got, ok := StaticEntry(i)
		if !ok || got.Name != want.Name || got.Value != want.Value {
			t.Errorf("StaticEntry(%d) = %+v/%v, want %+v", i, got, ok, want)
		}
	}
	if _, ok := StaticEntry(99); ok {
		t.Errorf("StaticEntry(99) exists, table should end at 98")
	}
	if _, ok := StaticEntry(-1); ok {
		t.Errorf("StaticEntry(-1) exists")
	}
}

func roundTrip(t *testing.T, fields []hpack.HeaderField) []byte {
	t.Helper()
	var e Encoder
	sec := e.AppendFieldSection(nil, fields)
	got, err := new(Decoder).DecodeFieldSection(sec)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(fields) {
		t.Fatalf("got %d fields, want %d", len(got), len(fields))
	}
	for i := range fields {
		if got[i] != fields[i] {
			t.Fatalf("field %d: %+v, want %+v", i, got[i], fields[i])
		}
	}
	return sec
}

func TestFieldSectionRoundTrip(t *testing.T) {
	sec := roundTrip(t, []hpack.HeaderField{
		{Name: ":method", Value: "GET"},                 // exact static match
		{Name: ":authority", Value: "www.a.com"},        // static name, literal value
		{Name: ":path", Value: "/index.html"},           // static name, literal value
		{Name: "x-request-id", Value: "abc123"},         // literal name and value
		{Name: "cookie", Value: "s=1", Sensitive: true}, // never-indexed
		{Name: "", Value: ""},                           // degenerate empty field
	})
	// Prefix: RIC 0, Base 0 — the static-only profile's fixed prefix.
	if sec[0] != 0x00 || sec[1] != 0x00 {
		t.Fatalf("section prefix % x, want 00 00", sec[:2])
	}
}

func TestIndexedEncodingIsCompact(t *testing.T) {
	var e Encoder
	sec := e.AppendFieldSection(nil, []hpack.HeaderField{{Name: ":method", Value: "GET"}})
	// 2-byte prefix + 1 indexed byte (0xc0 | 17).
	want := []byte{0x00, 0x00, 0xc0 | 17}
	if !bytes.Equal(sec, want) {
		t.Fatalf("section % x, want % x", sec, want)
	}
}

func TestSensitiveNeverIndexed(t *testing.T) {
	// An exact static match that is marked sensitive must NOT use the
	// indexed representation.
	var e Encoder
	sec := e.AppendFieldSection(nil, []hpack.HeaderField{
		{Name: ":method", Value: "GET", Sensitive: true},
	})
	if sec[2]&0xc0 == 0xc0 {
		t.Fatalf("sensitive field encoded as indexed line: % x", sec)
	}
	got, err := new(Decoder).DecodeFieldSection(sec)
	if err != nil || len(got) != 1 || !got[0].Sensitive {
		t.Fatalf("decode: %+v, %v — want one sensitive field", got, err)
	}
}

func TestHuffmanStringsRoundTrip(t *testing.T) {
	long := "www.0123456789-abcdefghijklmnopqrstuvwxyz.example.com"
	fields := []hpack.HeaderField{
		{Name: ":authority", Value: long},
		{Name: "x-binary", Value: "\x00\x01\xfe\xff"}, // huffman-unfriendly
	}
	var plain Encoder
	plain.DisableHuffman = true
	rawLen := len(plain.AppendFieldSection(nil, fields))
	huffLen := len(roundTrip(t, fields))
	if huffLen >= rawLen {
		t.Fatalf("huffman section %d bytes, raw %d — expected compression", huffLen, rawLen)
	}
	// The raw form decodes identically too.
	sec := plain.AppendFieldSection(nil, fields)
	got, err := new(Decoder).DecodeFieldSection(sec)
	if err != nil || len(got) != 2 || got[0] != fields[0] || got[1] != fields[1] {
		t.Fatalf("raw decode: %+v, %v", got, err)
	}
}

func TestDecoderRejectsDynamic(t *testing.T) {
	cases := []struct {
		name string
		sec  []byte
	}{
		{"nonzero required insert count", []byte{0x01, 0x00, 0xd1}},
		{"indexed dynamic (T=0)", []byte{0x00, 0x00, 0x80}},
		{"name ref dynamic (T=0)", []byte{0x00, 0x00, 0x40, 0x00}},
		{"post-base indexed", []byte{0x00, 0x00, 0x10}},
		{"post-base name ref", []byte{0x00, 0x00, 0x00, 0x00}},
	}
	for _, c := range cases {
		if _, err := new(Decoder).DecodeFieldSection(c.sec); !errors.Is(err, ErrDynamicUnsupported) {
			t.Errorf("%s: err = %v, want ErrDynamicUnsupported", c.name, err)
		}
	}
}

func TestDecoderBounds(t *testing.T) {
	if _, err := new(Decoder).DecodeFieldSection([]byte{0x00}); !errors.Is(err, ErrTruncated) {
		t.Errorf("cut prefix: err = %v, want ErrTruncated", err)
	}
	if _, err := new(Decoder).DecodeFieldSection([]byte{0x00, 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}); !errors.Is(err, ErrIntegerOverflow) {
		t.Errorf("overlong varint: err = %v, want ErrIntegerOverflow", err)
	}
	// Static index past the table end.
	sec := appendVarInt([]byte{0x00, 0x00}, 6, 0xc0, 99)
	if _, err := new(Decoder).DecodeFieldSection(sec); !errors.Is(err, ErrInvalidIndex) {
		t.Errorf("index 99: err = %v, want ErrInvalidIndex", err)
	}
	// A string literal longer than the decoder's bound.
	d := &Decoder{MaxStringLength: 4}
	var e Encoder
	long := e.AppendFieldSection(nil, []hpack.HeaderField{{Name: "x-k", Value: "0123456789"}})
	if _, err := d.DecodeFieldSection(long); err == nil {
		t.Errorf("over-bound string accepted")
	}
	// Truncated mid-string.
	full := e.AppendFieldSection(nil, []hpack.HeaderField{{Name: ":authority", Value: "host.example"}})
	if _, err := new(Decoder).DecodeFieldSection(full[:len(full)-3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("cut value: err = %v, want ErrTruncated", err)
	}
}
