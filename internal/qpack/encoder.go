package qpack

import "respectorigin/internal/hpack"

// Encoder writes encoded field sections in the static-only profile.
// The zero value is ready to use; an Encoder may be reused across
// sections and is not safe for concurrent use.
type Encoder struct {
	// DisableHuffman forces raw string literals (testing and
	// interop-debugging aid). Huffman is otherwise used whenever it
	// shortens the string, as in the hpack encoder.
	DisableHuffman bool
}

// Field line representation patterns (RFC 9204 §4.5). The T bit is
// always 1 here: every reference is into the static table.
const (
	patIndexedStatic   = 0xc0 // 1 1 <6-bit index>
	patLiteralNameRef  = 0x50 // 0 1 N 1 <4-bit name index>, N clear
	patLiteralNeverRef = 0x70 // 0 1 N 1 <4-bit name index>, N set
	patLiteralLiteral  = 0x20 // 0 0 1 N H <3-bit name length>
	patLiteralNeverLit = 0x30 // 0 0 1 N H, N set
)

// AppendFieldSection appends the encoded field section for fields:
// the two-byte section prefix (Required Insert Count and Base, both
// zero in the static-only profile — RFC 9204 §4.5.1), then one field
// line per field. Representations are chosen canonically: the lowest
// exact static match as an indexed line, else the lowest static name
// match as a literal with name reference, else a fully literal line.
// Sensitive fields are never encoded as indexed lines and carry the N
// bit, mirroring the hpack encoder's never-indexed discipline.
func (e *Encoder) AppendFieldSection(dst []byte, fields []hpack.HeaderField) []byte {
	// Required Insert Count 0 (8-bit prefix), then Base: sign bit 0,
	// Delta Base 0 (7-bit prefix).
	dst = append(dst, 0x00, 0x00)
	huff := !e.DisableHuffman
	for _, f := range fields {
		if !f.Sensitive {
			if idx, ok := staticPair[nameValue{f.Name, f.Value}]; ok {
				dst = appendVarInt(dst, 6, patIndexedStatic, uint64(idx))
				continue
			}
		}
		if idx, ok := staticName[f.Name]; ok {
			pat := byte(patLiteralNameRef)
			if f.Sensitive {
				pat = patLiteralNeverRef
			}
			dst = appendVarInt(dst, 4, pat, uint64(idx))
			dst = appendStringN(dst, f.Value, 7, 0, huff)
			continue
		}
		pat := byte(patLiteralLiteral)
		if f.Sensitive {
			pat = patLiteralNeverLit
		}
		dst = appendStringN(dst, f.Name, 3, pat, huff)
		dst = appendStringN(dst, f.Value, 7, 0, huff)
	}
	return dst
}
