// Package qpack implements QPACK field compression for HTTP/3 as
// specified by RFC 9204, in the static-table-only profile every
// deployed encoder may fall back to: no dynamic table, so no encoder
// stream, no decoder stream, and no risk of the head-of-line blocking
// the dynamic table reintroduces — exactly the configuration an h3
// client uses when SETTINGS_QPACK_MAX_TABLE_CAPACITY is zero.
//
// The package reuses the hpack package's canonical Huffman coding (the
// flat LUT decoder and encoder — RFC 9204 §4.1.2 adopts RFC 7541's
// Huffman table unchanged) and its HeaderField representation, and
// applies the same bounds discipline as the hpack decoder: prefix
// integers are capped at 32 bits, decoded strings at a configurable
// maximum, and every truncation or overflow is a typed error — a
// hostile field section can never commit the decoder to an unbounded
// allocation.
package qpack

import (
	"errors"

	"respectorigin/internal/hpack"
)

// Decoding errors, mirroring the hpack error surface. Huffman-coded
// string errors surface as hpack.ErrHuffman from the shared decoder.
var (
	// ErrTruncated is returned when a field section ends mid-field.
	ErrTruncated = errors.New("qpack: truncated field section")

	// ErrIntegerOverflow is returned when a prefix integer exceeds 32
	// bits.
	ErrIntegerOverflow = errors.New("qpack: integer overflow")

	// ErrStringLength is returned when a decoded string exceeds the
	// decoder's configured maximum.
	ErrStringLength = errors.New("qpack: string too long")

	// ErrInvalidIndex is returned for a static table index out of range.
	ErrInvalidIndex = errors.New("qpack: invalid static table index")

	// ErrDynamicUnsupported is returned for any field section that
	// requires a dynamic table: a nonzero Required Insert Count or a
	// dynamic/post-base reference. This decoder speaks the zero-capacity
	// profile, so such sections are a peer error.
	ErrDynamicUnsupported = errors.New("qpack: dynamic table reference in static-only mode")
)

// DefaultMaxStringLength bounds a single decoded string when the
// decoder's owner did not set an explicit limit, matching
// hpack.DefaultMaxStringLength.
const DefaultMaxStringLength = 1 << 20

// maxVarInt bounds decoded prefix integers, as in the hpack decoder:
// indices and string lengths all fit in 32 bits, and RFC 9204 §4.1.1
// inherits RFC 7541 §5.1's permission to cap accepted values.
const maxVarInt = 1<<32 - 1

// appendVarInt appends the prefix-integer representation of i using an
// n-bit prefix OR-ed into first (RFC 9204 §4.1.1, identical to RFC
// 7541 §5.1).
func appendVarInt(dst []byte, n uint8, first byte, i uint64) []byte {
	k := uint64(1)<<n - 1
	if i < k {
		return append(dst, first|byte(i))
	}
	dst = append(dst, first|byte(k))
	i -= k
	for i >= 128 {
		dst = append(dst, byte(i)|0x80)
		i >>= 7
	}
	return append(dst, byte(i))
}

// readVarInt decodes an n-bit-prefix integer from buf, returning the
// value and the remaining bytes. Values above maxVarInt — including
// continuation sequences long enough to wrap a uint64 accumulator —
// are ErrIntegerOverflow.
func readVarInt(buf []byte, n uint8) (uint64, []byte, error) {
	if len(buf) == 0 {
		return 0, nil, ErrTruncated
	}
	k := uint64(1)<<n - 1
	i := uint64(buf[0]) & k
	buf = buf[1:]
	if i < k {
		return i, buf, nil
	}
	var shift uint
	for {
		if len(buf) == 0 {
			return 0, nil, ErrTruncated
		}
		b := buf[0]
		buf = buf[1:]
		// Five continuation octets already cover 2^35 > maxVarInt; a
		// sixth can only overflow (or wrap uint64), so reject it before
		// touching the accumulator.
		if shift > 28 {
			return 0, nil, ErrIntegerOverflow
		}
		i += uint64(b&0x7f) << shift
		if i > maxVarInt {
			return 0, nil, ErrIntegerOverflow
		}
		if b&0x80 == 0 {
			return i, buf, nil
		}
		shift += 7
	}
}

// appendStringN appends a string literal whose length carries an n-bit
// prefix with the Huffman bit at position n (the bit just above the
// prefix), OR-ed into first. QPACK uses n=7 for values (H bit 0x80,
// like HPACK) and n=3 for literal names (H bit 0x08).
func appendStringN(dst []byte, s string, n uint8, first byte, huffman bool) []byte {
	hBit := byte(1) << n
	if huffman {
		if hl := hpack.HuffmanEncodeLength(s); hl < uint64(len(s)) {
			dst = appendVarInt(dst, n, first|hBit, hl)
			return hpack.AppendHuffmanString(dst, s)
		}
	}
	dst = appendVarInt(dst, n, first, uint64(len(s)))
	return append(dst, s...)
}

// readStringN decodes a string literal with an n-bit length prefix and
// the Huffman bit at position n. maxLen bounds the decoded length;
// scratch is reused as the Huffman decode buffer.
func readStringN(buf []byte, n uint8, maxLen uint64, scratch []byte) (s string, rest, scratchOut []byte, err error) {
	if maxLen == 0 {
		maxLen = DefaultMaxStringLength
	}
	if len(buf) == 0 {
		return "", nil, scratch, ErrTruncated
	}
	huff := buf[0]&(1<<n) != 0
	ln, rest, err := readVarInt(buf, n)
	if err != nil {
		return "", nil, scratch, err
	}
	if uint64(len(rest)) < ln {
		return "", nil, scratch, ErrTruncated
	}
	raw := rest[:ln]
	rest = rest[ln:]
	if !huff {
		if ln > maxLen {
			return "", nil, scratch, ErrStringLength
		}
		return string(raw), rest, scratch, nil
	}
	dec, err := hpack.AppendHuffmanDecode(scratch[:0], raw, maxLen)
	if err != nil {
		return "", nil, dec, err
	}
	return string(dec), rest, dec, nil
}
