package qpack

import "testing"

// FuzzQPACKDecodeFull throws arbitrary bytes at the field-section
// decoder. The decoder must never panic; when it accepts a section,
// the decoded fields must survive a fresh encode→decode round trip
// semantically (the encoder chooses canonical representations, so the
// re-encoded section may differ byte-wise while decoding identically).
func FuzzQPACKDecodeFull(f *testing.F) {
	f.Add([]byte{0x00, 0x00})                                       // empty section
	f.Add([]byte{0x00, 0x00, 0xd1})                                 // indexed :method GET
	f.Add([]byte{0x00, 0x00, 0x51, 0x04, '/', 'a', 'b', 'c'})       // :path literal with name ref
	f.Add([]byte{0x00, 0x00, 0x27, 0x03, 'x', '-', 'k', 0x01, 'v'}) // literal name + value
	f.Add([]byte{0x00, 0x00, 0x80})                                 // dynamic reference: rejected
	f.Add([]byte{0x01, 0x00, 0xd1})                                 // nonzero RIC: rejected
	// Overlong varint continuation (the 32-bit bound regression class).
	f.Add([]byte{0x00, 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Decoder
		fields, err := d.DecodeFieldSection(data)
		if err != nil {
			return
		}
		var e Encoder
		sec := e.AppendFieldSection(nil, fields)
		got, err := new(Decoder).DecodeFieldSection(sec)
		if err != nil {
			t.Fatalf("re-encoded section rejected: %v", err)
		}
		if len(got) != len(fields) {
			t.Fatalf("round trip field count %d, want %d", len(got), len(fields))
		}
		for i := range fields {
			if got[i].Name != fields[i].Name || got[i].Value != fields[i].Value || got[i].Sensitive != fields[i].Sensitive {
				t.Fatalf("field %d round trip %+v, want %+v", i, got[i], fields[i])
			}
		}
	})
}
