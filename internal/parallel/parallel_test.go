package parallel

import (
	"reflect"
	"sync/atomic"
	"testing"
)

var workerCounts = []int{1, 2, 3, 4, 7, 16, 64}

func TestDoVisitsEveryIndexOnce(t *testing.T) {
	for _, w := range workerCounts {
		const n = 1000
		var visits [n]int32
		Do(n, w, func(i int) { atomic.AddInt32(&visits[i], 1) })
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, v)
			}
		}
	}
}

func TestDoEmptyAndTiny(t *testing.T) {
	Do(0, 4, func(i int) { t.Fatal("fn called for n=0") })
	var count int32
	Do(1, 16, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 1 {
		t.Fatalf("n=1 visited %d times", count)
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	const n = 513
	want := Map(n, 1, func(i int) int { return i * i })
	for _, w := range workerCounts[1:] {
		got := Map(n, w, func(i int) int { return i * i })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: map output differs", w)
		}
	}
}

func TestMapZeroLength(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("len = %d", len(got))
	}
}

// Fold with an order-sensitive accumulator (slice append): contiguous
// chunking plus in-order merge must reproduce the sequential order for
// every worker count.
func TestFoldPreservesSequentialOrder(t *testing.T) {
	const n = 777
	newAcc := func() []int { return nil }
	fold := func(acc []int, i int) []int { return append(acc, i) }
	merge := func(a, b []int) []int { return append(a, b...) }

	want := Fold(n, 1, newAcc, fold, merge)
	for _, w := range workerCounts[1:] {
		got := Fold(n, w, newAcc, fold, merge)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: fold order differs", w)
		}
	}
	for i, v := range want {
		if v != i {
			t.Fatalf("sequential fold wrong at %d: %d", i, v)
		}
	}
}

func TestFoldEmpty(t *testing.T) {
	got := Fold(0, 8, func() int { return 42 },
		func(acc, i int) int { return acc + i },
		func(a, b int) int { return a + b })
	if got != 42 {
		t.Fatalf("empty fold = %d, want fresh accumulator", got)
	}
}

func TestMapReduceCountsMatchSequential(t *testing.T) {
	items := make([]int, 2000)
	for i := range items {
		items[i] = i % 37
	}
	newAcc := func() map[int]int { return map[int]int{} }
	mapFn := func(acc map[int]int, v int) map[int]int { acc[v]++; return acc }
	mergeFn := func(a, b map[int]int) map[int]int {
		for k, v := range b {
			a[k] += v
		}
		return a
	}
	want := MapReduce(items, 1, newAcc, mapFn, mergeFn)
	for _, w := range workerCounts[1:] {
		got := MapReduce(items, w, newAcc, mapFn, mergeFn)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: map-reduce differs", w)
		}
	}
}

func TestNormalize(t *testing.T) {
	if Normalize(0) != DefaultWorkers() || Normalize(-3) != DefaultWorkers() {
		t.Error("non-positive workers should resolve to DefaultWorkers")
	}
	if Normalize(5) != 5 {
		t.Error("positive workers should pass through")
	}
}
