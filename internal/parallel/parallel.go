// Package parallel is the corpus engine's fan-out layer: deterministic
// data-parallel primitives shared by corpus generation (internal/webgen)
// and corpus analysis (internal/core, internal/report).
//
// Every primitive splits its index space into contiguous chunks, hands
// chunks to a bounded worker pool, and recombines per-chunk results in
// chunk-index order. Because chunks are contiguous and the final merge
// is left-to-right, any fold whose merge is associative with respect to
// concatenation produces output identical to a sequential loop — for
// every worker count. That invariant is what lets the crawl→model→report
// pipeline keep byte-identical artifacts while scaling across cores.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default parallelism: GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Normalize resolves a caller-supplied worker count: values ≤ 0 select
// DefaultWorkers.
func Normalize(workers int) int {
	if workers <= 0 {
		return DefaultWorkers()
	}
	return workers
}

// chunkSpan picks the per-chunk index span for n items across workers:
// several chunks per worker for load balance, bounded so accumulator
// counts stay small.
func chunkSpan(n, workers int) int {
	span := (n + workers*4 - 1) / (workers * 4)
	if span < 1 {
		span = 1
	}
	if span > 4096 {
		span = 4096
	}
	return span
}

// Do runs fn(i) for every i in [0, n) across at most workers
// goroutines. fn must be safe to call concurrently for distinct
// indexes; each index is visited exactly once.
func Do(n, workers int, fn func(i int)) {
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	span := chunkSpan(n, workers)
	nchunks := (n + span - 1) / span
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				hi := (c + 1) * span
				if hi > n {
					hi = n
				}
				for i := c * span; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Map computes out[i] = fn(i) for every i in [0, n) across workers.
// Results land at their input index, so output order never depends on
// scheduling.
func Map[R any](n, workers int, fn func(i int) R) []R {
	out := make([]R, maxInt(n, 0))
	Do(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// Fold reduces [0, n) into a single accumulator across workers: each
// contiguous chunk is folded locally in index order into a fresh
// accumulator from newAcc, and chunk accumulators are merged
// left-to-right in chunk order. For any merge that is associative with
// respect to concatenation, the result is identical to
//
//	acc := newAcc()
//	for i := 0; i < n; i++ { acc = fold(acc, i) }
//
// regardless of the worker count.
func Fold[A any](n, workers int, newAcc func() A, fold func(acc A, i int) A, merge func(a, b A) A) A {
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return newAcc()
	}
	if workers <= 1 {
		acc := newAcc()
		for i := 0; i < n; i++ {
			acc = fold(acc, i)
		}
		return acc
	}
	span := chunkSpan(n, workers)
	nchunks := (n + span - 1) / span
	accs := make([]A, nchunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				hi := (c + 1) * span
				if hi > n {
					hi = n
				}
				acc := newAcc()
				for i := c * span; i < hi; i++ {
					acc = fold(acc, i)
				}
				accs[c] = acc
			}
		}()
	}
	wg.Wait()
	out := accs[0]
	for _, a := range accs[1:] {
		out = merge(out, a)
	}
	return out
}

// MapReduce folds a slice through mapFn and merges shard accumulators
// with mergeFn — the per-page analysis primitive behind the report
// tables and figures. Equivalent to Fold over the slice's index space.
func MapReduce[T, A any](items []T, workers int, newAcc func() A, mapFn func(acc A, item T) A, mergeFn func(a, b A) A) A {
	return Fold(len(items), workers, newAcc,
		func(acc A, i int) A { return mapFn(acc, items[i]) }, mergeFn)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
