package bench

import (
	"fmt"
	"testing"

	"respectorigin/internal/loadgen"
)

// loadgenUsers keeps one iteration in the low hundreds of milliseconds:
// big enough that the parallel user phase dominates the sequential
// arrival and queueing passes, small enough for testing.Benchmark to
// converge quickly.
const (
	loadgenUsers = 5000
	loadgenSeed  = 1
)

// loadgenSuite measures the open-loop serving mode end to end at the
// worker counts the determinism gate exercises. Ungated: the run spans
// the whole stack (CDN, browser pools, caches, netsim, queueing), so
// allocation counts are workload-shaped rather than a fixed hot-path
// budget.
func loadgenSuite() []Benchmark {
	var out []Benchmark
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		out = append(out, Benchmark{
			Suite: "loadgen",
			Name:  fmt.Sprintf("OpenLoopRun/users=%d/seed=%d/workers=%d", loadgenUsers, loadgenSeed, workers),
			F: func(b *testing.B) {
				b.ReportAllocs()
				cfg := loadgen.DefaultConfig()
				cfg.Users = loadgenUsers
				cfg.Seed = loadgenSeed
				cfg.Workers = workers
				for i := 0; i < b.N; i++ {
					if _, err := loadgen.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}
	return out
}
