package bench

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"respectorigin/internal/corpus"
	"respectorigin/internal/har"
	"respectorigin/internal/webgen"
)

// corpusFixture is a fixed generated corpus encoded both ways, built
// once and shared by every corpus benchmark so encode and decode runs
// price exactly the same pages.
var corpusFixture struct {
	once     sync.Once
	pages    []*har.Page
	ndjson   []byte
	columnar []byte
	err      error
}

func corpusFixtureInit() error {
	corpusFixture.once.Do(func() {
		cfg := webgen.DefaultConfig()
		cfg.Sites = 150
		cfg.Seed = 1
		cfg.Workers = 1
		ds, err := webgen.Generate(cfg)
		if err != nil {
			corpusFixture.err = err
			return
		}
		corpusFixture.pages = ds.Pages
		for _, f := range []corpus.Format{corpus.FormatNDJSON, corpus.FormatColumnar} {
			var buf bytes.Buffer
			w := corpus.NewWriter(&buf, f)
			for _, p := range ds.Pages {
				if err := w.Write(p); err != nil {
					corpusFixture.err = err
					return
				}
			}
			if err := w.Close(); err != nil {
				corpusFixture.err = err
				return
			}
			if f == corpus.FormatNDJSON {
				corpusFixture.ndjson = buf.Bytes()
			} else {
				corpusFixture.columnar = buf.Bytes()
			}
		}
	})
	return corpusFixture.err
}

// decodeBench drains one full decode of raw in format f per iteration
// and reports pages/op so the two formats' page throughput compares
// directly in the trajectory file.
func decodeBench(f corpus.Format, raw func() []byte) func(b *testing.B) {
	return func(b *testing.B) {
		if err := corpusFixtureInit(); err != nil {
			b.Fatal(err)
		}
		enc := raw()
		b.SetBytes(int64(len(enc)))
		b.ReportAllocs()
		b.ResetTimer()
		pages := 0
		for i := 0; i < b.N; i++ {
			r := corpus.NewReader(bytes.NewReader(enc), f)
			for {
				_, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				pages++
			}
		}
		b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
	}
}

func encodeBench(f corpus.Format) func(b *testing.B) {
	return func(b *testing.B) {
		if err := corpusFixtureInit(); err != nil {
			b.Fatal(err)
		}
		pages := corpusFixture.pages
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := corpus.NewWriter(io.Discard, f)
			for _, p := range pages {
				if err := w.Write(p); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// corpusSuite prices the corpus codecs on a fixed generated corpus.
// The columnar paths are gated — the codec is ours, so its allocs/op
// are exact budgets; the NDJSON paths ride encoding/json, whose
// internals shift across Go releases, and stay informational.
func corpusSuite() []Benchmark {
	return []Benchmark{
		{Suite: "corpus", Name: "ColumnarDecode", Gated: true,
			F: decodeBench(corpus.FormatColumnar, func() []byte { return corpusFixture.columnar })},
		{Suite: "corpus", Name: "NDJSONDecode", Gated: false,
			F: decodeBench(corpus.FormatNDJSON, func() []byte { return corpusFixture.ndjson })},
		{Suite: "corpus", Name: "ColumnarEncode", Gated: true, F: encodeBench(corpus.FormatColumnar)},
		{Suite: "corpus", Name: "NDJSONEncode", Gated: false, F: encodeBench(corpus.FormatNDJSON)},
	}
}
