package bench

import (
	"fmt"
	"testing"

	"respectorigin/internal/scenario"
)

// scenarioSites keeps one sweep iteration around a hundred
// milliseconds: the 72-cell cross-product dominates, the per-archetype
// corpus generation amortizes across cells.
const (
	scenarioSites = 40
	scenarioSeed  = 1
)

// scenarioSuite measures the matrix engine end to end at the worker
// counts the determinism gate exercises. Ungated: each cell spans
// corpus decode, browser pools, caches and pricing, so allocation
// counts are workload-shaped rather than a fixed hot-path budget.
func scenarioSuite() []Benchmark {
	var out []Benchmark
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		out = append(out, Benchmark{
			Suite: "scenario",
			Name:  fmt.Sprintf("MatrixRun/sites=%d/seed=%d/workers=%d", scenarioSites, scenarioSeed, workers),
			F: func(b *testing.B) {
				b.ReportAllocs()
				cfg := scenario.DefaultConfig()
				cfg.Sites = scenarioSites
				cfg.Seed = scenarioSeed
				cfg.Workers = workers
				for i := 0; i < b.N; i++ {
					if _, err := scenario.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}
	return out
}
