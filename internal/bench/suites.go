package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"respectorigin/internal/core"
	"respectorigin/internal/h2"
	"respectorigin/internal/har"
	"respectorigin/internal/hpack"
	"respectorigin/internal/measure"
	"respectorigin/internal/obs"
	"respectorigin/internal/qpack"
	"respectorigin/internal/report"
	"respectorigin/internal/webgen"
)

// --- hpack suite ---

// corpusHeaderStrings mirrors the header values the crawl pipeline
// pushes through HPACK: hostnames, paths, cache directives, UA strings.
var corpusHeaderStrings = []string{
	"www.example.com",
	"no-cache",
	"/static/js/app.bundle.min.js?v=20220413",
	"text/html; charset=utf-8",
	"Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36",
	"max-age=31536000, immutable",
	"cdn-7.assets.example-edge.net",
	"gzip, deflate, br",
}

func corpusHeaderFields() []hpack.HeaderField {
	return []hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "www.example.com"},
		{Name: ":path", Value: "/static/js/app.bundle.min.js?v=20220413"},
		{Name: "accept-encoding", Value: "gzip, deflate, br"},
		{Name: "user-agent", Value: "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36"},
		{Name: "cache-control", Value: "no-cache"},
	}
}

func hpackSuite() []Benchmark {
	return []Benchmark{
		{Suite: "hpack", Name: "HuffmanDecode", Gated: false, F: func(b *testing.B) {
			var encs [][]byte
			var total int64
			for _, s := range corpusHeaderStrings {
				e := hpack.AppendHuffmanString(nil, s)
				encs = append(encs, e)
				total += int64(len(e))
			}
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, e := range encs {
					if _, err := hpack.HuffmanDecode(e, 0); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{Suite: "hpack", Name: "HuffmanDecodeTree", Gated: false, F: func(b *testing.B) {
			var encs [][]byte
			var total int64
			for _, s := range corpusHeaderStrings {
				e := hpack.AppendHuffmanString(nil, s)
				encs = append(encs, e)
				total += int64(len(e))
			}
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, e := range encs {
					if _, err := hpack.HuffmanDecodeTree(e, 0); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{Suite: "hpack", Name: "DecodeFull", Gated: false, F: func(b *testing.B) {
			blk := hpack.NewEncoder().AppendHeaderBlock(nil, corpusHeaderFields())
			d := hpack.NewDecoder()
			b.SetBytes(int64(len(blk)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.DecodeFull(blk); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Suite: "hpack", Name: "EncodeBlock", Gated: false, F: func(b *testing.B) {
			fields := corpusHeaderFields()
			e := hpack.NewEncoder()
			var buf []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = e.AppendHeaderBlock(buf[:0], fields)
			}
		}},
	}
}

// --- qpack suite ---

func qpackSuite() []Benchmark {
	return []Benchmark{
		{Suite: "qpack", Name: "EncodeFieldSection", Gated: true, F: func(b *testing.B) {
			fields := corpusHeaderFields()
			var e qpack.Encoder
			var buf []byte
			buf = e.AppendFieldSection(buf, fields)
			b.SetBytes(int64(len(buf)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = e.AppendFieldSection(buf[:0], fields)
			}
		}},
		{Suite: "qpack", Name: "DecodeFieldSection", Gated: false, F: func(b *testing.B) {
			var e qpack.Encoder
			sec := e.AppendFieldSection(nil, corpusHeaderFields())
			var d qpack.Decoder
			b.SetBytes(int64(len(sec)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.DecodeFieldSection(sec); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Suite: "qpack", Name: "RoundTrip", Gated: false, F: func(b *testing.B) {
			fields := corpusHeaderFields()
			var e qpack.Encoder
			var d qpack.Decoder
			sec := e.AppendFieldSection(nil, fields)
			b.SetBytes(int64(len(sec)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sec = e.AppendFieldSection(sec[:0], fields)
				if _, err := d.DecodeFieldSection(sec); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// --- h2 suite ---

// loopReader replays one encoded byte stream forever.
type loopReader struct {
	frames []byte
	off    int
}

func (lr *loopReader) Read(p []byte) (int, error) {
	n := copy(p, lr.frames[lr.off:])
	lr.off = (lr.off + n) % len(lr.frames)
	return n, nil
}

func encodedDataFrame(size int) []byte {
	var buf bytes.Buffer
	fr := h2.NewFramer(&buf, nil)
	if err := fr.WriteData(1, false, make([]byte, size)); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func h2Suite() []Benchmark {
	var out []Benchmark
	for _, size := range []int{64, 16384} {
		size := size
		out = append(out, Benchmark{
			Suite: "h2", Name: fmt.Sprintf("FramerReadFrame/size=%d", size), Gated: true,
			F: func(b *testing.B) {
				enc := encodedDataFrame(size)
				fr := h2.NewFramer(io.Discard, &loopReader{frames: enc})
				fr.SetMaxReadFrameSize(1 << 20)
				b.SetBytes(int64(len(enc)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := fr.ReadFrame(); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}
	out = append(out, Benchmark{
		Suite: "h2", Name: "FramerWriteData/size=16384", Gated: true,
		F: func(b *testing.B) {
			fr := h2.NewFramer(io.Discard, nil)
			data := make([]byte, 16384)
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fr.WriteData(1, false, data); err != nil {
					b.Fatal(err)
				}
			}
		},
	})
	out = append(out, Benchmark{
		Suite: "h2", Name: "FramerWriteControl", Gated: true,
		F: func(b *testing.B) {
			fr := h2.NewFramer(io.Discard, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fr.WriteWindowUpdate(1, 4096); err != nil {
					b.Fatal(err)
				}
				if err := fr.WriteSettingsAck(); err != nil {
					b.Fatal(err)
				}
			}
		},
	})
	return out
}

// --- obs suite ---

func benchEvent(i int) obs.Event {
	return obs.Event{Rank: i, Seq: i & 7, Kind: obs.KindDNSQuery, Host: "host.example", MS: 1.5}
}

func obsSuite() []Benchmark {
	return []Benchmark{
		{Suite: "obs", Name: "EmitRecorderOff", Gated: true, F: func(b *testing.B) {
			var rec obs.Recorder // nil: recorder off
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rec != nil {
					rec.Event(benchEvent(i))
				}
			}
		}},
		{Suite: "obs", Name: "TraceEvent", Gated: false, F: func(b *testing.B) {
			tr := obs.NewTrace()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Event(benchEvent(i))
			}
		}},
		{Suite: "obs", Name: "MetricsEvent", Gated: true, F: func(b *testing.B) {
			m := obs.NewMetrics()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Event(benchEvent(i))
			}
		}},
		{Suite: "obs", Name: "TraceWriteNDJSON", Gated: false, F: func(b *testing.B) {
			tr := obs.NewTrace()
			for i := 0; i < 10000; i++ {
				tr.Event(benchEvent(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tr.WriteNDJSON(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// --- measure suite ---

func measureSuite() []Benchmark {
	return []Benchmark{
		{Suite: "measure", Name: "Summarize", Gated: false, F: func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			xs := make([]float64, 10000)
			for i := range xs {
				xs[i] = rng.ExpFloat64() * 40
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				measure.Summarize(xs)
			}
		}},
		{Suite: "measure", Name: "CDF", Gated: false, F: func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			xs := make([]float64, 10000)
			for i := range xs {
				xs[i] = rng.ExpFloat64() * 40
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				measure.CDF(xs)
			}
		}},
		{Suite: "measure", Name: "CounterTop", Gated: false, F: func(b *testing.B) {
			c := measure.NewCounter()
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 5000; i++ {
				c.Add(fmt.Sprintf("as%d", rng.Intn(400)), 1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Top(20)
			}
		}},
	}
}

// --- pipeline suite ---

// pipelineOnce mirrors the cmd/crawl + cmd/report pipeline in memory at
// a fixed seed: generate the corpus streaming into NDJSON while
// recording trace events, read it back, and render the full report.
// It is the same flow the determinism harness replays, sized down so a
// single iteration stays in benchmark territory.
func pipelineOnce(sites int, seed int64, workers int) error {
	cfg := webgen.DefaultConfig()
	cfg.Sites = sites
	cfg.Seed = seed
	cfg.Workers = workers

	var corpus bytes.Buffer
	trace := obs.NewTrace()
	sw := har.NewStreamWriter(&corpus)
	if _, err := webgen.GenerateStream(cfg, func(p *har.Page) error {
		core.EmitPageEvents(trace, p)
		return sw.Write(p)
	}); err != nil {
		return err
	}
	if err := trace.WriteNDJSON(io.Discard); err != nil {
		return err
	}
	pages, err := har.ReadJSON(bytes.NewReader(corpus.Bytes()))
	if err != nil {
		return err
	}
	ds := &webgen.Dataset{Pages: pages, ASDB: webgen.RebuildASDB(pages)}
	c := report.NewCorpusWorkers(ds, workers)
	c.Table1(5)
	c.Table2(10)
	c.Table3()
	c.Figure3()
	c.Headline()
	return nil
}

// pipelineSites keeps one iteration around a hundred milliseconds so
// testing.Benchmark converges in a handful of iterations.
const (
	pipelineSites = 40
	pipelineSeed  = 1
)

func pipelineSuite() []Benchmark {
	var out []Benchmark
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		out = append(out, Benchmark{
			Suite: "pipeline",
			Name:  fmt.Sprintf("CorpusCrawlReport/sites=%d/seed=%d/workers=%d", pipelineSites, pipelineSeed, workers),
			F: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := pipelineOnce(pipelineSites, pipelineSeed, workers); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}
	return out
}
