package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// DefaultThreshold is the relative ns/op increase tolerated before a
// benchmark counts as regressed. Wall-time measurements are noisy;
// allocs/op on gated benchmarks is exact and tolerates nothing.
const DefaultThreshold = 0.20

// A Finding is one comparison outcome worth reporting.
type Finding struct {
	ID     string
	Kind   string // "ns_regression", "allocs_regression", "missing", "improvement"
	Detail string
	Fatal  bool
}

// Load reads and validates a trajectory file. Any structural problem —
// unreadable file, bad JSON, wrong schema, empty benchmark list — is an
// error, so a malformed or missing baseline can never pass as a clean
// comparison.
func Load(path string) (File, error) {
	var f File
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, fmt.Errorf("bench: reading baseline: %w", err)
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if f.Schema != SchemaV1 {
		return f, fmt.Errorf("bench: %s has schema %q, want %q", path, f.Schema, SchemaV1)
	}
	if len(f.Benchmarks) == 0 {
		return f, fmt.Errorf("bench: %s contains no benchmarks", path)
	}
	return f, nil
}

// Write serializes a trajectory file with stable indentation.
func Write(path string, f File) error {
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Filter returns a copy of f keeping only benchmarks whose suite the
// selector matches (same syntax as Select). It lets CI compare a
// micro-only run against a full committed baseline without the absent
// pipeline entries reading as dropped gates.
func Filter(f File, suite string) (File, error) {
	if suite == "" || suite == "all" {
		return f, nil
	}
	want := map[string]bool{}
	for _, s := range strings.Split(suite, ",") {
		if s == "micro" {
			for _, m := range MicroSuites {
				want[m] = true
			}
			continue
		}
		want[s] = true
	}
	out := f
	out.Benchmarks = nil
	for _, r := range f.Benchmarks {
		if want[r.Suite] {
			out.Benchmarks = append(out.Benchmarks, r)
		}
	}
	if len(out.Benchmarks) == 0 {
		return out, fmt.Errorf("bench: suite filter %q matches no benchmarks", suite)
	}
	return out, nil
}

// Compare evaluates new results against a baseline. Rules:
//
//   - on a gated (hot path) benchmark, ns/op above old*(1+threshold) is
//     a fatal regression, and any allocs/op increase is fatal regardless
//     of threshold — those paths are budgeted to exact counts.
//   - on non-gated benchmarks, ns/op swings beyond the threshold are
//     reported as notes: the heavyweight end-to-end measurements are too
//     noisy to gate CI on, but the trajectory still wants them visible.
//   - a baseline benchmark missing from the new run is fatal: silently
//     dropping a gate must not read as a pass.
//   - benchmarks new in this run are informational only.
//
// Improvements beyond the threshold are reported so the trajectory
// narrative in EXPERIMENTS.md can cite them.
func Compare(old, cur File, threshold float64) []Finding {
	curByID := map[string]Result{}
	for _, r := range cur.Benchmarks {
		curByID[r.ID()] = r
	}
	var out []Finding
	for _, o := range old.Benchmarks {
		n, ok := curByID[o.ID()]
		if !ok {
			out = append(out, Finding{
				ID: o.ID(), Kind: "missing", Fatal: true,
				Detail: "present in baseline but not in new results",
			})
			continue
		}
		gated := o.Gated || n.Gated
		if gated && n.AllocsPerOp > o.AllocsPerOp {
			out = append(out, Finding{
				ID: o.ID(), Kind: "allocs_regression", Fatal: true,
				Detail: fmt.Sprintf("allocs/op %d -> %d (gated: any increase fails)",
					o.AllocsPerOp, n.AllocsPerOp),
			})
		}
		if o.NsPerOp > 0 {
			ratio := n.NsPerOp / o.NsPerOp
			switch {
			case ratio > 1+threshold:
				out = append(out, Finding{
					ID: o.ID(), Kind: "ns_regression", Fatal: gated,
					Detail: fmt.Sprintf("ns/op %.1f -> %.1f (%+.1f%%, threshold %.0f%%)",
						o.NsPerOp, n.NsPerOp, (ratio-1)*100, threshold*100),
				})
			case ratio < 1-threshold:
				out = append(out, Finding{
					ID: o.ID(), Kind: "improvement",
					Detail: fmt.Sprintf("ns/op %.1f -> %.1f (%+.1f%%)",
						o.NsPerOp, n.NsPerOp, (ratio-1)*100),
				})
			}
		}
	}
	return out
}
