// Package bench is the repo's benchmark trajectory harness: a registry
// of hot-path and end-to-end benchmarks runnable from a plain binary
// (cmd/bench), with machine-readable results and a regression
// comparator. The committed BENCH_*.json files record the trajectory
// across PRs; CI replays the gated subset and fails on regressions.
package bench

import (
	"fmt"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// A Benchmark is one registered measurement. Gated benchmarks are the
// hot paths held to strict allocs/op budgets: Compare fails them on any
// allocs/op increase, not just on the ns/op threshold.
type Benchmark struct {
	Suite string
	Name  string
	Gated bool
	F     func(b *testing.B)
}

// ID returns the stable "suite/name" key results are matched by.
func (bm Benchmark) ID() string { return bm.Suite + "/" + bm.Name }

// MicroSuites are the per-package hot-path suites; "micro" selects all
// of them at once. The pipeline suite is excluded: it runs the full
// corpus→crawl→report stack and is priced accordingly.
var MicroSuites = []string{"hpack", "qpack", "h2", "obs", "measure", "corpus"}

// All returns every registered benchmark in deterministic order.
func All() []Benchmark {
	var out []Benchmark
	out = append(out, hpackSuite()...)
	out = append(out, qpackSuite()...)
	out = append(out, h2Suite()...)
	out = append(out, obsSuite()...)
	out = append(out, measureSuite()...)
	out = append(out, corpusSuite()...)
	out = append(out, pipelineSuite()...)
	out = append(out, loadgenSuite()...)
	out = append(out, scenarioSuite()...)
	return out
}

// Select filters the registry by suite name. "micro" expands to every
// micro suite; "all" or "" selects everything.
func Select(suite string) ([]Benchmark, error) {
	all := All()
	if suite == "" || suite == "all" {
		return all, nil
	}
	want := map[string]bool{}
	for _, s := range strings.Split(suite, ",") {
		if s == "micro" {
			for _, m := range MicroSuites {
				want[m] = true
			}
			continue
		}
		want[s] = true
	}
	known := map[string]bool{}
	for _, bm := range all {
		known[bm.Suite] = true
	}
	for s := range want {
		if !known[s] {
			return nil, fmt.Errorf("unknown suite %q (have: %s, plus \"micro\" and \"all\")",
				s, strings.Join(suiteNames(all), ", "))
		}
	}
	var out []Benchmark
	for _, bm := range all {
		if want[bm.Suite] {
			out = append(out, bm)
		}
	}
	return out, nil
}

func suiteNames(all []Benchmark) []string {
	seen := map[string]bool{}
	var names []string
	for _, bm := range all {
		if !seen[bm.Suite] {
			seen[bm.Suite] = true
			names = append(names, bm.Suite)
		}
	}
	sort.Strings(names)
	return names
}

// Result is one benchmark's measurement as serialized into the
// BENCH_*.json trajectory files.
type Result struct {
	Suite       string  `json:"suite"`
	Name        string  `json:"name"`
	Gated       bool    `json:"gated"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// ID returns the "suite/name" key.
func (r Result) ID() string { return r.Suite + "/" + r.Name }

// File is the schema of a BENCH_*.json trajectory file.
type File struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Commit     string   `json:"commit,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// SchemaV1 identifies the current trajectory file layout.
const SchemaV1 = "respectorigin-bench/1"

// Run executes the given benchmarks via testing.Benchmark and collects
// results plus environment metadata. progress, when non-nil, is called
// with each result as it lands.
func Run(bms []Benchmark, progress func(Result)) File {
	f := File{
		Schema:     SchemaV1,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commit:     gitCommit(),
	}
	for _, bm := range bms {
		br := testing.Benchmark(bm.F)
		r := Result{
			Suite:       bm.Suite,
			Name:        bm.Name,
			Gated:       bm.Gated,
			N:           br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			BytesPerOp:  br.AllocedBytesPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
		}
		if br.Bytes > 0 && br.T > 0 {
			r.MBPerS = (float64(br.Bytes) * float64(br.N) / 1e6) / br.T.Seconds()
		}
		f.Benchmarks = append(f.Benchmarks, r)
		if progress != nil {
			progress(r)
		}
	}
	return f
}

// gitCommit best-effort resolves the working tree's HEAD for the env
// metadata block; results are comparable without it.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
