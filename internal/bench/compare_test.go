package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fileWith(results ...Result) File {
	return File{Schema: SchemaV1, Benchmarks: results}
}

func findingKinds(fs []Finding) map[string]bool {
	out := map[string]bool{}
	for _, f := range fs {
		out[f.ID+":"+f.Kind] = true
	}
	return out
}

func TestCompareGatedAllocsRegression(t *testing.T) {
	old := fileWith(Result{Suite: "h2", Name: "Read", Gated: true, NsPerOp: 100, AllocsPerOp: 0})
	cur := fileWith(Result{Suite: "h2", Name: "Read", Gated: true, NsPerOp: 100, AllocsPerOp: 1})
	fs := Compare(old, cur, DefaultThreshold)
	if len(fs) != 1 || fs[0].Kind != "allocs_regression" || !fs[0].Fatal {
		t.Fatalf("findings = %+v, want one fatal allocs_regression", fs)
	}
}

func TestCompareGatedNsRegressionIsFatal(t *testing.T) {
	old := fileWith(Result{Suite: "h2", Name: "Read", Gated: true, NsPerOp: 100})
	cur := fileWith(Result{Suite: "h2", Name: "Read", Gated: true, NsPerOp: 130})
	fs := Compare(old, cur, 0.20)
	if len(fs) != 1 || fs[0].Kind != "ns_regression" || !fs[0].Fatal {
		t.Fatalf("findings = %+v, want one fatal ns_regression", fs)
	}
}

func TestCompareUngatedNsRegressionIsNote(t *testing.T) {
	old := fileWith(Result{Suite: "pipeline", Name: "E2E", NsPerOp: 100})
	cur := fileWith(Result{Suite: "pipeline", Name: "E2E", NsPerOp: 200})
	fs := Compare(old, cur, 0.20)
	if len(fs) != 1 || fs[0].Kind != "ns_regression" || fs[0].Fatal {
		t.Fatalf("findings = %+v, want one non-fatal ns_regression", fs)
	}
}

func TestCompareWithinThresholdAndImprovement(t *testing.T) {
	old := fileWith(
		Result{Suite: "h2", Name: "A", Gated: true, NsPerOp: 100, AllocsPerOp: 2},
		Result{Suite: "h2", Name: "B", NsPerOp: 100},
	)
	cur := fileWith(
		Result{Suite: "h2", Name: "A", Gated: true, NsPerOp: 115, AllocsPerOp: 2}, // within 20%
		Result{Suite: "h2", Name: "B", NsPerOp: 50},                               // improvement
	)
	fs := Compare(old, cur, 0.20)
	kinds := findingKinds(fs)
	if len(fs) != 1 || !kinds["h2/B:improvement"] {
		t.Fatalf("findings = %+v, want only h2/B improvement", fs)
	}
}

func TestCompareMissingBenchmarkIsFatal(t *testing.T) {
	old := fileWith(Result{Suite: "h2", Name: "Gone", Gated: true, NsPerOp: 10})
	cur := fileWith(Result{Suite: "h2", Name: "Other", NsPerOp: 10})
	fs := Compare(old, cur, 0.20)
	if len(fs) != 1 || fs[0].Kind != "missing" || !fs[0].Fatal {
		t.Fatalf("findings = %+v, want one fatal missing", fs)
	}
}

func TestCompareAllocsImprovementAllowed(t *testing.T) {
	old := fileWith(Result{Suite: "h2", Name: "Read", Gated: true, NsPerOp: 100, AllocsPerOp: 3})
	cur := fileWith(Result{Suite: "h2", Name: "Read", Gated: true, NsPerOp: 100, AllocsPerOp: 0})
	if fs := Compare(old, cur, 0.20); len(fs) != 0 {
		t.Fatalf("findings = %+v, want none for an allocs improvement", fs)
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"bad-json.json":   `{"schema": nope`,
		"bad-schema.json": `{"schema":"other/9","benchmarks":[{"suite":"a","name":"b"}]}`,
		"empty.json":      `{"schema":"respectorigin-bench/1","benchmarks":[]}`,
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p); err == nil {
			t.Errorf("Load(%s) accepted a malformed baseline", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "does-not-exist.json")); err == nil {
		t.Error("Load accepted a missing baseline")
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bench.json")
	want := File{
		Schema: SchemaV1, GoVersion: "go0.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4,
		Benchmarks: []Result{{Suite: "h2", Name: "Read", Gated: true, N: 10, NsPerOp: 12.5, AllocsPerOp: 0, MBPerS: 3.25}},
	}
	if err := Write(p, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0] != want.Benchmarks[0] || got.GOMAXPROCS != 4 {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
}

func TestFilter(t *testing.T) {
	f := fileWith(
		Result{Suite: "hpack", Name: "A"},
		Result{Suite: "h2", Name: "B"},
		Result{Suite: "pipeline", Name: "C"},
	)
	micro, err := Filter(f, "micro")
	if err != nil {
		t.Fatal(err)
	}
	if len(micro.Benchmarks) != 2 {
		t.Fatalf("micro filter kept %d benchmarks, want 2", len(micro.Benchmarks))
	}
	if _, err := Filter(f, "nosuch"); err == nil {
		t.Error("Filter accepted a selector matching nothing")
	}
	all, err := Filter(f, "all")
	if err != nil || len(all.Benchmarks) != 3 {
		t.Fatalf("all filter = %d benchmarks, %v", len(all.Benchmarks), err)
	}
}

func TestSelect(t *testing.T) {
	micro, err := Select("micro")
	if err != nil {
		t.Fatal(err)
	}
	for _, bm := range micro {
		if bm.Suite == "pipeline" {
			t.Fatalf("micro selection included pipeline benchmark %s", bm.ID())
		}
	}
	if _, err := Select("bogus"); err == nil || !strings.Contains(err.Error(), "unknown suite") {
		t.Fatalf("Select(bogus) err = %v, want unknown suite", err)
	}
	all, err := Select("all")
	if err != nil || len(all) <= len(micro) {
		t.Fatalf("Select(all) = %d benchmarks (micro %d), err %v", len(all), len(micro), err)
	}
	ids := map[string]bool{}
	for _, bm := range all {
		if ids[bm.ID()] {
			t.Fatalf("duplicate benchmark ID %s", bm.ID())
		}
		ids[bm.ID()] = true
	}
}
