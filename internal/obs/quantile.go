package obs

import (
	"sort"
	"sync"
)

// quantileChunkSize sizes the append-only sample chunks. Matching the
// trace layer's chunking keeps the append path allocation-amortized:
// one chunk allocation per 4096 samples, never a whole-slice copy.
const quantileChunkSize = 4096

// Quantile is an exact streaming quantile accumulator: an append-only
// sample store whose order statistics are computed on demand from the
// full retained sample. Where *Hist answers percentile queries from
// fixed buckets (constant memory, interpolated answers), Quantile keeps
// every observation, so At returns the true order statistic — the
// contract SLO reporting needs, where a bucket-interpolation error at
// p99.9 can move a latency objective across its threshold.
//
// Memory is linear in the sample count (8 bytes per observation:
// ~8 MB per million samples), which is the deliberate trade against the
// histogram. It is safe for concurrent use; note that the value of At
// depends only on the multiset of observed samples, never on their
// arrival order, so concurrent writers cannot perturb a summary.
type Quantile struct {
	mu     sync.Mutex
	chunks [][]float64
	n      int
	sorted []float64 // cached flattened sort; valid when !dirty
	dirty  bool
}

// NewQuantile returns an empty accumulator.
func NewQuantile() *Quantile { return &Quantile{} }

// Observe appends one sample.
func (q *Quantile) Observe(v float64) {
	q.mu.Lock()
	last := len(q.chunks) - 1
	if last < 0 || len(q.chunks[last]) == cap(q.chunks[last]) {
		q.chunks = append(q.chunks, make([]float64, 0, quantileChunkSize))
		last++
	}
	q.chunks[last] = append(q.chunks[last], v)
	q.n++
	q.dirty = true
	q.mu.Unlock()
}

// N returns the sample count.
func (q *Quantile) N() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// At returns the exact p-quantile (0 ≤ p ≤ 1) of every observed sample,
// using the same type-7 interpolation between order statistics as
// measure.Quantile. An empty accumulator returns 0. The flatten-and-
// sort is cached and only recomputed after new observations.
func (q *Quantile) At(p float64) float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return 0
	}
	if q.dirty {
		s := make([]float64, 0, q.n)
		for _, c := range q.chunks {
			s = append(s, c...)
		}
		sort.Float64s(s)
		q.sorted = s
		q.dirty = false
	}
	s := q.sorted
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	h := p * float64(len(s)-1)
	lo := int(h)
	hi := lo + 1
	if hi >= len(s) {
		return s[lo]
	}
	return s[lo] + (h-float64(lo))*(s[hi]-s[lo])
}

// CountAtOrBelow returns how many samples are ≤ x — the SLO-attainment
// numerator for a latency objective of x.
func (q *Quantile) CountAtOrBelow(x float64) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, c := range q.chunks {
		for _, v := range c {
			if v <= x {
				n++
			}
		}
	}
	return n
}

// Merge folds every sample of o into q. Merging is order-insensitive
// (the quantile depends only on the sample multiset), so per-shard
// accumulators recombine deterministically regardless of worker count.
func (q *Quantile) Merge(o *Quantile) {
	if o == nil || o == q {
		return
	}
	o.mu.Lock()
	var samples []float64
	for _, c := range o.chunks {
		samples = append(samples, c...)
	}
	o.mu.Unlock()
	for _, v := range samples {
		q.Observe(v)
	}
}
