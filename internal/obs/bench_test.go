package obs

import (
	"io"
	"testing"
)

// benchEvent is representative of the hot emission sites: a stream-open
// event with host and count, as emitted once per request by the h2
// client.
func benchEvent(i int) Event {
	return Event{Rank: i & 1023, Seq: i, Kind: KindStreamOpen, Host: "www.site-123456.example", N: 3}
}

// BenchmarkEmitRecorderOff measures the uninstrumented path: every
// protocol layer calls the nil-tolerant helpers unconditionally, so
// this must stay at 0 allocs/op for recorder-off runs to be free.
func BenchmarkEmitRecorderOff(b *testing.B) {
	var r Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Count(r, "h2.client.streams", 1)
		Observe(r, "page.ms", 12.5)
		Emit(r, benchEvent(i))
	}
}

// BenchmarkTraceEvent measures the recorder-on trace append path that a
// 10^5-page crawl exercises ~20 times per page.
func BenchmarkTraceEvent(b *testing.B) {
	t := NewTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Event(benchEvent(i))
	}
}

// BenchmarkMetricsEvent measures the per-kind event counting path.
func BenchmarkMetricsEvent(b *testing.B) {
	m := NewMetrics()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Event(benchEvent(i))
	}
}

// BenchmarkMetricsCountObserve measures the steady-state counter and
// histogram paths (names already interned).
func BenchmarkMetricsCountObserve(b *testing.B) {
	m := NewMetrics()
	m.Count("h2.client.streams", 1)
	m.Observe("page.ms", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Count("h2.client.streams", 1)
		m.Observe("page.ms", 12.5)
	}
}

// BenchmarkTraceWriteNDJSON measures trace serialization throughput.
func BenchmarkTraceWriteNDJSON(b *testing.B) {
	t := NewTrace()
	for i := 0; i < 10000; i++ {
		t.Event(benchEvent(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := t.WriteNDJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
