// Package obs is the observability layer of the ORIGIN stack: atomic
// counters, fixed-bucket latency histograms, and span-style per-page-
// load event traces, threaded through the protocol layers behind the
// Recorder interface.
//
// The design discipline mirrors the fault layer's zero plan: a nil
// Recorder is valid everywhere and means "off". Every call site goes
// through the nil-tolerant package helpers (Count, Observe, Emit), so
// an uninstrumented run performs no allocation, takes no lock, and
// leaves every output byte identical to a build without the layer.
//
// Three concrete recorders cover the stack's needs:
//
//   - *Metrics: lock-free counters and fixed-bucket histograms,
//     renderable as text (via measure.Summary) and publishable as
//     expvar for the -metrics-addr endpoints.
//   - *Trace: an append-only event log whose NDJSON serialization is
//     deterministic — events sort by (Rank, Seq) regardless of the
//     goroutine interleaving that produced them.
//   - multi: a fan-out combining any of the above.
package obs

// Event kinds, in rough page-load order. A per-page-load span is the
// Rank-ordered sequence page_start … page_end; everything between is
// one hop of the DNS → TLS → H2 stream → ORIGIN frame → coalesce
// decision timeline.
const (
	KindPageStart     = "page_start"
	KindDNSQuery      = "dns_query"
	KindDNSCacheHit   = "dns_cache_hit"
	KindDNSFail       = "dns_fail"
	KindTLSHandshake  = "tls_handshake"
	KindTLSResume     = "tls_resume"
	KindQUICHandshake = "quic_handshake"
	KindZeroRTT       = "zero_rtt"
	KindAddrTokenHit  = "addr_token_hit"
	KindCertMemoHit   = "cert_memo_hit"
	KindConnectFail   = "connect_fail"
	KindStreamOpen    = "h2_stream_open"
	KindOriginFrame   = "origin_frame"
	KindCoalesceHit   = "coalesce_hit"
	KindMisdirected   = "421_fallback"
	KindRetry         = "retry"
	KindGoAway        = "goaway"
	KindReset         = "reset"
	KindPageEnd       = "page_end"
)

// Event is one record of a page-load span. Rank identifies the page
// load (site rank for corpus traces, visit index for deployment
// traces); Seq orders events within it. The pair is assigned by the
// emitting layer from deterministic state, never from wall-clock time,
// so a trace is reproducible byte for byte.
type Event struct {
	Rank   int     `json:"rank"`
	Seq    int     `json:"seq"`
	Kind   string  `json:"kind"`
	Host   string  `json:"host,omitempty"`
	Conn   string  `json:"conn,omitempty"`   // carrying connection's hostname
	MS     float64 `json:"ms,omitempty"`     // modelled duration, when known
	N      int     `json:"n,omitempty"`      // kind-specific count
	Detail string  `json:"detail,omitempty"` // e.g. "origin", "ip", "race"

	// Per-page summary, set on page_end events: the §4.2 measured
	// counts and ideal-coalescing targets the funnel table aggregates.
	DNS         int `json:"dns,omitempty"`
	TLS         int `json:"tls,omitempty"`
	IdealIP     int `json:"ideal_ip,omitempty"`
	IdealOrigin int `json:"ideal_origin,omitempty"`
}

// Recorder receives metrics and trace events. Implementations must be
// safe for concurrent use; a nil Recorder is a valid no-op and callers
// are expected to pass one through the package helpers below.
type Recorder interface {
	// Count adds delta to the named counter.
	Count(name string, delta int64)
	// Observe records one sample, in milliseconds, into the named
	// latency histogram.
	Observe(hist string, ms float64)
	// Event appends one trace event.
	Event(ev Event)
}

// Count adds delta to r's named counter; nil r is a no-op.
func Count(r Recorder, name string, delta int64) {
	if r != nil {
		r.Count(name, delta)
	}
}

// Observe records a histogram sample on r; nil r is a no-op.
func Observe(r Recorder, hist string, ms float64) {
	if r != nil {
		r.Observe(hist, ms)
	}
}

// Emit appends a trace event to r; nil r is a no-op.
func Emit(r Recorder, ev Event) {
	if r != nil {
		r.Event(ev)
	}
}

// multi fans every call out to each member.
type multi []Recorder

// Multi combines recorders into one. Nil members are dropped; the
// result is nil when nothing remains, preserving the no-op fast path.
func Multi(rs ...Recorder) Recorder {
	var out multi
	for _, r := range rs {
		if r != nil {
			out = append(out, r)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

func (m multi) Count(name string, delta int64) {
	for _, r := range m {
		r.Count(name, delta)
	}
}

func (m multi) Observe(hist string, ms float64) {
	for _, r := range m {
		r.Observe(hist, ms)
	}
}

func (m multi) Event(ev Event) {
	for _, r := range m {
		r.Event(ev)
	}
}
