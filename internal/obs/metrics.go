package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"respectorigin/internal/measure"
)

// histBuckets are the fixed upper bounds (in milliseconds) of the
// latency histograms: powers of two from 1 ms to ~65 s plus a catch-all
// overflow bucket. Fixed bounds keep Observe lock-free after the first
// sample and make merged snapshots comparable across runs.
var histBuckets = func() []float64 {
	var b []float64
	for ms := 1.0; ms <= 65536; ms *= 2 {
		b = append(b, ms)
	}
	return b
}()

// Hist is a fixed-bucket latency histogram. All mutation is atomic; a
// Hist is safe for concurrent use by any number of goroutines.
type Hist struct {
	counts  []atomic.Int64 // one per bucket bound, plus overflow at the end
	n       atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
	minBits atomic.Uint64 // float64 min
	maxBits atomic.Uint64 // float64 max
}

func newHist() *Hist {
	h := &Hist{counts: make([]atomic.Int64, len(histBuckets)+1)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample in milliseconds.
func (h *Hist) Observe(ms float64) {
	i := sort.SearchFloat64s(histBuckets, ms)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+ms)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if ms >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(ms)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if ms <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(ms)) {
			break
		}
	}
}

// N returns the sample count.
func (h *Hist) N() int64 { return h.n.Load() }

// Sum returns the sample sum in milliseconds.
func (h *Hist) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// quantile interpolates the p-quantile from the bucket counts, assuming
// samples are uniform within a bucket (the standard fixed-bucket
// estimator). Exact observed min/max bound the extreme buckets.
func (h *Hist) quantile(counts []int64, total int64, p float64) float64 {
	if total == 0 {
		return 0
	}
	target := p * float64(total)
	cum := int64(0)
	min := math.Float64frombits(h.minBits.Load())
	max := math.Float64frombits(h.maxBits.Load())
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lo := 0.0
			if i > 0 {
				lo = histBuckets[i-1]
			}
			hi := max
			if i < len(histBuckets) && histBuckets[i] < hi {
				hi = histBuckets[i]
			}
			if lo < min {
				lo = min
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return max
}

// Summary renders the histogram as a measure.Summary, the same order-
// statistics container every table in internal/report consumes, so
// report code renders live metrics and corpus samples identically.
// Quantiles are bucket-interpolated estimates, exact at min/max.
func (h *Hist) Summary() measure.Summary {
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return measure.Summary{}
	}
	q := func(p float64) float64 { return h.quantile(counts, total, p) }
	s := measure.Summary{
		N:      int(total),
		Min:    math.Float64frombits(h.minBits.Load()),
		Max:    math.Float64frombits(h.maxBits.Load()),
		Mean:   h.Sum() / float64(total),
		Median: q(0.50),
		P25:    q(0.25),
		P75:    q(0.75),
		P90:    q(0.90),
		P95:    q(0.95),
		P99:    q(0.99),
		P999:   q(0.999),
	}
	s.IQR = s.P75 - s.P25
	return s
}

// Quantile returns the bucket-interpolated p-quantile of the histogram
// over a consistent snapshot of the bucket counts. It is an estimate
// (uniform-within-bucket), exact at the observed min and max; SLO
// reporting that needs exact tail order statistics should pair the
// histogram with a *Quantile.
func (h *Hist) Quantile(p float64) float64 {
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return h.quantile(counts, total, p)
}

// Metrics is the counter + histogram recorder. The zero value is not
// usable; call NewMetrics. Trace events are counted by kind but not
// retained — pair with a *Trace via Multi when a trace is wanted.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*atomic.Int64
	hists    map[string]*Hist
}

// NewMetrics returns an empty metrics recorder.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*atomic.Int64),
		hists:    make(map[string]*Hist),
	}
}

var _ Recorder = (*Metrics)(nil)

func (m *Metrics) counter(name string) *atomic.Int64 {
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		c = new(atomic.Int64)
		m.counters[name] = c
	}
	return c
}

// Count implements Recorder.
func (m *Metrics) Count(name string, delta int64) {
	m.counter(name).Add(delta)
}

// Observe implements Recorder.
func (m *Metrics) Observe(hist string, ms float64) {
	m.mu.RLock()
	h := m.hists[hist]
	m.mu.RUnlock()
	if h == nil {
		m.mu.Lock()
		if h = m.hists[hist]; h == nil {
			h = newHist()
			m.hists[hist] = h
		}
		m.mu.Unlock()
	}
	h.Observe(ms)
}

// eventCounterName maps every known event kind to its counter name, so
// the per-event hot path skips the "events."+kind concatenation (one
// heap allocation per emitted event at crawl scale).
var eventCounterName = func() map[string]string {
	names := make(map[string]string)
	for _, k := range []string{
		KindPageStart, KindDNSQuery, KindDNSCacheHit, KindDNSFail,
		KindTLSHandshake, KindTLSResume, KindCertMemoHit, KindConnectFail,
		KindStreamOpen, KindOriginFrame, KindCoalesceHit, KindMisdirected,
		KindRetry, KindGoAway, KindReset, KindPageEnd,
	} {
		names[k] = "events." + k
	}
	return names
}()

// Event implements Recorder by counting events per kind under
// "events.<kind>".
func (m *Metrics) Event(ev Event) {
	name, ok := eventCounterName[ev.Kind]
	if !ok {
		name = "events." + ev.Kind
	}
	m.Count(name, 1)
}

// Get returns the current value of a counter (0 if never written).
func (m *Metrics) Get(name string) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if c := m.counters[name]; c != nil {
		return c.Load()
	}
	return 0
}

// HistSummary returns the summary of a histogram (zero if absent).
func (m *Metrics) HistSummary(name string) measure.Summary {
	m.mu.RLock()
	h := m.hists[name]
	m.mu.RUnlock()
	if h == nil {
		return measure.Summary{}
	}
	return h.Summary()
}

// HistQuantile returns the bucket-interpolated p-quantile of the named
// histogram (0 if absent) — the percentile surface behind the p50/p90/
// p99/p99.9 latency tracking of the serving-mode reports.
func (m *Metrics) HistQuantile(name string, p float64) float64 {
	m.mu.RLock()
	h := m.hists[name]
	m.mu.RUnlock()
	if h == nil {
		return 0
	}
	return h.Quantile(p)
}

// Counters returns a sorted snapshot of all counters.
func (m *Metrics) Counters() map[string]int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]int64, len(m.counters))
	for k, c := range m.counters {
		out[k] = c.Load()
	}
	return out
}

// String renders every counter and histogram as an aligned text block,
// counters first, both sorted by name.
func (m *Metrics) String() string {
	snap := m.Counters()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%-40s %12d\n", k, snap[k])
	}
	m.mu.RLock()
	hnames := make([]string, 0, len(m.hists))
	for k := range m.hists {
		hnames = append(hnames, k)
	}
	m.mu.RUnlock()
	sort.Strings(hnames)
	for _, k := range hnames {
		s := m.HistSummary(k)
		fmt.Fprintf(&b, "%-40s n=%-8d mean=%-8.1f p50=%-8.1f p90=%-8.1f p99=%-8.1f p99.9=%-8.1f max=%.1f\n",
			k, s.N, s.Mean, s.Median, s.P90, s.P99, s.P999, s.Max)
	}
	return b.String()
}

var expvarOnce sync.Map // prefix -> struct{}, expvar.Publish panics on duplicates

// PublishExpvar exposes the metrics under /debug/vars as one expvar map
// named prefix. Publishing the same prefix twice is a no-op (expvar
// itself panics on duplicate names), so restarts within one process are
// safe.
func (m *Metrics) PublishExpvar(prefix string) {
	if _, loaded := expvarOnce.LoadOrStore(prefix, struct{}{}); loaded {
		return
	}
	expvar.Publish(prefix, expvar.Func(func() any {
		out := map[string]any{}
		for k, v := range m.Counters() {
			out[k] = v
		}
		m.mu.RLock()
		hnames := make([]string, 0, len(m.hists))
		for k := range m.hists {
			hnames = append(hnames, k)
		}
		m.mu.RUnlock()
		for _, k := range hnames {
			s := m.HistSummary(k)
			out[k] = map[string]any{
				"n": s.N, "mean": s.Mean, "p50": s.Median,
				"p90": s.P90, "p99": s.P99, "p999": s.P999, "max": s.Max,
			}
		}
		return out
	}))
}
