package obs

import (
	"bytes"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderHelpers(t *testing.T) {
	// The no-op fast path must tolerate a nil Recorder everywhere.
	Count(nil, "x", 1)
	Observe(nil, "h", 3.5)
	Emit(nil, Event{Kind: KindDNSQuery})
}

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	m.Count("a", 2)
	m.Count("a", 3)
	m.Count("b", 1)
	if m.Get("a") != 5 || m.Get("b") != 1 || m.Get("absent") != 0 {
		t.Errorf("counters: a=%d b=%d absent=%d", m.Get("a"), m.Get("b"), m.Get("absent"))
	}
	snap := m.Counters()
	if snap["a"] != 5 || len(snap) != 2 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestMetricsEventCountsByKind(t *testing.T) {
	m := NewMetrics()
	m.Event(Event{Kind: KindCoalesceHit})
	m.Event(Event{Kind: KindCoalesceHit})
	m.Event(Event{Kind: KindMisdirected})
	if m.Get("events."+KindCoalesceHit) != 2 || m.Get("events."+KindMisdirected) != 1 {
		t.Errorf("event counters wrong: %v", m.Counters())
	}
}

func TestHistSummary(t *testing.T) {
	m := NewMetrics()
	for i := 1; i <= 100; i++ {
		m.Observe("lat", float64(i))
	}
	s := m.HistSummary("lat")
	if s.N != 100 {
		t.Fatalf("n = %d", s.N)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Errorf("mean = %v", s.Mean)
	}
	// Bucket-interpolated quantiles are estimates; at 100 uniform
	// samples over power-of-two buckets they must land within a bucket
	// width of the truth.
	if s.Median < 25 || s.Median > 75 {
		t.Errorf("p50 = %v, want within [25, 75]", s.Median)
	}
	if s.P99 < s.Median || s.P99 > 100 {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.Median > s.P90 || s.P90 > s.P99 {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", s.Median, s.P90, s.P99)
	}
}

func TestHistEmptyAndOverflow(t *testing.T) {
	m := NewMetrics()
	if s := m.HistSummary("absent"); s.N != 0 {
		t.Errorf("absent hist summary = %+v", s)
	}
	m.Observe("big", 1e9) // beyond the last bucket bound
	s := m.HistSummary("big")
	if s.N != 1 || s.Max != 1e9 || s.Median != 1e9 {
		t.Errorf("overflow summary = %+v", s)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Count("c", 1)
				m.Observe("h", float64(i%37))
				m.Event(Event{Kind: KindDNSQuery})
			}
		}()
	}
	wg.Wait()
	if m.Get("c") != 8000 {
		t.Errorf("c = %d, want 8000", m.Get("c"))
	}
	if s := m.HistSummary("h"); s.N != 8000 {
		t.Errorf("hist n = %d, want 8000", s.N)
	}
	if m.Get("events."+KindDNSQuery) != 8000 {
		t.Errorf("event counter = %d", m.Get("events."+KindDNSQuery))
	}
}

func TestMetricsString(t *testing.T) {
	m := NewMetrics()
	m.Count("z.last", 1)
	m.Count("a.first", 2)
	m.Observe("lat", 10)
	s := m.String()
	if !strings.Contains(s, "a.first") || !strings.Contains(s, "z.last") || !strings.Contains(s, "lat") {
		t.Errorf("render missing names:\n%s", s)
	}
	if strings.Index(s, "a.first") > strings.Index(s, "z.last") {
		t.Error("counters not sorted")
	}
}

func TestTraceDeterministicOrder(t *testing.T) {
	// Append events from concurrent goroutines in arbitrary order; the
	// serialized stream must sort by (rank, seq).
	tr := NewTrace()
	var wg sync.WaitGroup
	for rank := 5; rank >= 1; rank-- {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for seq := 3; seq >= 0; seq-- {
				tr.Event(Event{Rank: rank, Seq: seq, Kind: KindDNSQuery, Host: "h"})
			}
		}(rank)
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != 20 {
		t.Fatalf("len = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if a.Rank > b.Rank || (a.Rank == b.Rank && a.Seq >= b.Seq) {
			t.Fatalf("events out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestTraceNDJSONRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.Event(Event{Rank: 2, Seq: 0, Kind: KindPageStart, Host: "b.example"})
	tr.Event(Event{Rank: 1, Seq: 1, Kind: KindTLSHandshake, Host: "a.example", MS: 182.5})
	tr.Event(Event{Rank: 1, Seq: 0, Kind: KindPageStart, Host: "a.example"})
	tr.Event(Event{Rank: 1, Seq: 2, Kind: KindPageEnd, Host: "a.example", DNS: 3, TLS: 2, IdealIP: 2, IdealOrigin: 1})

	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip lost events: %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
	if got[0].Kind != KindPageStart || got[0].Rank != 1 {
		t.Errorf("first event = %+v", got[0])
	}
	if got[2].DNS != 3 || got[2].IdealOrigin != 1 {
		t.Errorf("page_end summary lost: %+v", got[2])
	}
}

func TestTraceWriteIsStable(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 50; i++ {
		tr.Event(Event{Rank: 50 - i, Seq: i % 3, Kind: KindDNSQuery})
	}
	var a, b bytes.Buffer
	if err := tr.WriteNDJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two serializations of the same trace differ")
	}
}

func TestReadNDJSONBadLine(t *testing.T) {
	if _, err := ReadNDJSON(strings.NewReader("{\"rank\":1}\nnot json\n")); err == nil {
		t.Error("malformed line not rejected")
	}
}

func TestMultiFanOut(t *testing.T) {
	m := NewMetrics()
	tr := NewTrace()
	r := Multi(nil, m, nil, tr)
	r.Count("x", 4)
	r.Observe("h", 2)
	r.Event(Event{Rank: 1, Kind: KindGoAway})
	if m.Get("x") != 4 || m.Get("events."+KindGoAway) != 1 {
		t.Error("metrics member missed calls")
	}
	if tr.Len() != 1 {
		t.Error("trace member missed event")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils must be nil")
	}
	if Multi(m) != Recorder(m) {
		t.Error("Multi of one must unwrap")
	}
}

func TestPublishExpvar(t *testing.T) {
	m := NewMetrics()
	m.Count("reqs", 7)
	m.Observe("lat", 5)
	m.PublishExpvar("obs_test_metrics")
	m.PublishExpvar("obs_test_metrics") // second publish must not panic
	v := expvar.Get("obs_test_metrics")
	if v == nil {
		t.Fatal("expvar not published")
	}
	if !strings.Contains(v.String(), "\"reqs\"") || !strings.Contains(v.String(), "\"lat\"") {
		t.Errorf("expvar payload = %s", v.String())
	}
}
