package obs

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// Hand-rolled NDJSON encoding of Event. WriteNDJSON sits at the end of
// every crawl and serializes millions of events; encoding/json costs a
// reflective walk and an allocation per line. appendEventJSON produces
// byte-identical output (enforced by a differential test against
// encoding/json) while appending into one reusable buffer.

// appendEventJSON appends the compact JSON object for ev, exactly as
// encoding/json would render it: same field order, same omitempty
// behavior, same string escaping (HTML-escaped), same float format.
func appendEventJSON(b []byte, ev Event) []byte {
	b = append(b, `{"rank":`...)
	b = strconv.AppendInt(b, int64(ev.Rank), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, int64(ev.Seq), 10)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, ev.Kind)
	if ev.Host != "" {
		b = append(b, `,"host":`...)
		b = appendJSONString(b, ev.Host)
	}
	if ev.Conn != "" {
		b = append(b, `,"conn":`...)
		b = appendJSONString(b, ev.Conn)
	}
	if ev.MS != 0 {
		b = append(b, `,"ms":`...)
		b = appendJSONFloat(b, ev.MS)
	}
	if ev.N != 0 {
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, int64(ev.N), 10)
	}
	if ev.Detail != "" {
		b = append(b, `,"detail":`...)
		b = appendJSONString(b, ev.Detail)
	}
	if ev.DNS != 0 {
		b = append(b, `,"dns":`...)
		b = strconv.AppendInt(b, int64(ev.DNS), 10)
	}
	if ev.TLS != 0 {
		b = append(b, `,"tls":`...)
		b = strconv.AppendInt(b, int64(ev.TLS), 10)
	}
	if ev.IdealIP != 0 {
		b = append(b, `,"ideal_ip":`...)
		b = strconv.AppendInt(b, int64(ev.IdealIP), 10)
	}
	if ev.IdealOrigin != 0 {
		b = append(b, `,"ideal_origin":`...)
		b = strconv.AppendInt(b, int64(ev.IdealOrigin), 10)
	}
	return append(b, '}')
}

const hexDigits = "0123456789abcdef"

// appendJSONString escapes s the way encoding/json does with HTML
// escaping on: control characters, '"', '\\', '<', '>', '&' are
// escaped; invalid UTF-8 becomes U+FFFD; U+2028/U+2029 are escaped for
// JS embedding.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if jsonSafe[c] {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// jsonSafe marks the ASCII bytes encoding/json copies through verbatim
// in HTML-escaping mode.
var jsonSafe = func() (safe [utf8.RuneSelf]bool) {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		safe[c] = c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
	}
	return
}()

// appendJSONFloat renders f the way encoding/json's floatEncoder does:
// shortest representation, %f style unless the magnitude calls for %e,
// with the exponent abbreviated like ES6.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-09" style exponents to "e-9".
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}
