package obs

import (
	"math/rand"
	"testing"

	"respectorigin/internal/measure"
)

func TestQuantileExactOrderStatistics(t *testing.T) {
	q := NewQuantile()
	// 1..100 in scrambled order: quantiles must match measure.Quantile
	// over the same sample (shared type-7 interpolation).
	rs := rand.New(rand.NewSource(7))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	rs.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		q.Observe(v)
	}
	if q.N() != 100 {
		t.Fatalf("N = %d, want 100", q.N())
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		want := measure.Quantile(xs, p)
		if got := q.At(p); got != want {
			t.Errorf("At(%g) = %g, want %g", p, got, want)
		}
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	q := NewQuantile()
	if got := q.At(0.5); got != 0 {
		t.Fatalf("empty At(0.5) = %g, want 0", got)
	}
	q.Observe(42)
	for _, p := range []float64{0, 0.5, 1} {
		if got := q.At(p); got != 42 {
			t.Fatalf("single-sample At(%g) = %g, want 42", p, got)
		}
	}
}

func TestQuantileCrossesChunkBoundary(t *testing.T) {
	q := NewQuantile()
	n := quantileChunkSize*2 + 100
	for i := n; i > 0; i-- { // descending, so sorting must actually work
		q.Observe(float64(i))
	}
	if q.N() != n {
		t.Fatalf("N = %d, want %d", q.N(), n)
	}
	if got := q.At(0); got != 1 {
		t.Errorf("At(0) = %g, want 1", got)
	}
	if got := q.At(1); got != float64(n) {
		t.Errorf("At(1) = %g, want %d", got, n)
	}
	// Interleave more observations after a query: the dirty flag must
	// invalidate the cached sort.
	q.Observe(float64(n + 1))
	if got := q.At(1); got != float64(n+1) {
		t.Errorf("after new max, At(1) = %g, want %d", got, n+1)
	}
}

func TestQuantileCountAtOrBelow(t *testing.T) {
	q := NewQuantile()
	for i := 1; i <= 10; i++ {
		q.Observe(float64(i) * 10) // 10..100
	}
	if got := q.CountAtOrBelow(50); got != 5 {
		t.Errorf("CountAtOrBelow(50) = %d, want 5", got)
	}
	if got := q.CountAtOrBelow(5); got != 0 {
		t.Errorf("CountAtOrBelow(5) = %d, want 0", got)
	}
	if got := q.CountAtOrBelow(1000); got != 10 {
		t.Errorf("CountAtOrBelow(1000) = %d, want 10", got)
	}
}

func TestQuantileMergeMatchesCombined(t *testing.T) {
	a, b, all := NewQuantile(), NewQuantile(), NewQuantile()
	rs := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		v := rs.ExpFloat64() * 100
		all.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	a.Merge(nil) // no-op
	a.Merge(a)   // self-merge no-op
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		if got, want := a.At(p), all.At(p); got != want {
			t.Errorf("merged At(%g) = %g, want %g", p, got, want)
		}
	}
}
