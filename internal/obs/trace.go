package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Trace is an append-only event recorder. Appends are cheap and
// concurrent; ordering is imposed only at serialization time, where
// events sort by (Rank, Seq) — the deterministic coordinates assigned
// by the emitting layer — so the NDJSON output of a sharded run is byte
// identical to a sequential one.
type Trace struct {
	mu  sync.Mutex
	evs []Event
}

// NewTrace returns an empty trace recorder.
func NewTrace() *Trace { return &Trace{} }

var _ Recorder = (*Trace)(nil)

// Count implements Recorder as a no-op (traces hold events only).
func (t *Trace) Count(name string, delta int64) {}

// Observe implements Recorder as a no-op.
func (t *Trace) Observe(hist string, ms float64) {}

// Event implements Recorder.
func (t *Trace) Event(ev Event) {
	t.mu.Lock()
	t.evs = append(t.evs, ev)
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.evs)
}

// Events returns the events sorted by (Rank, Seq). The result is a
// copy; the trace keeps accepting appends.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	out := append([]Event(nil), t.evs...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteNDJSON serializes the trace as rank-ordered newline-delimited
// JSON, one event per line.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses an event stream written by WriteNDJSON (or any
// NDJSON file of Event objects). Blank lines are skipped.
func ReadNDJSON(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
