package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Trace is an append-only event recorder. Appends are cheap and
// concurrent; ordering is imposed only at serialization time, where
// events sort by (Rank, Seq) — the deterministic coordinates assigned
// by the emitting layer — so the NDJSON output of a sharded run is byte
// identical to a sequential one.
//
// Storage is a list of fixed-size chunks rather than one flat slice:
// appending never copies previously recorded events, so the per-event
// cost stays flat instead of spiking on every doubling of a
// multi-million-event trace. Retired chunks are recycled through a
// sync.Pool by Reset.
type Trace struct {
	mu     sync.Mutex
	chunks []*[]Event // every chunk full except the last
	n      int
}

// traceChunkSize is the number of events per storage chunk. At ~100
// bytes per Event a chunk is a few hundred KiB: large enough to
// amortize chunk bookkeeping to nothing, small enough that a mostly
// idle recorder wastes little.
const traceChunkSize = 4096

var traceChunkPool = sync.Pool{New: func() any {
	s := make([]Event, 0, traceChunkSize)
	return &s
}}

// NewTrace returns an empty trace recorder.
func NewTrace() *Trace { return &Trace{} }

var _ Recorder = (*Trace)(nil)

// Count implements Recorder as a no-op (traces hold events only).
func (t *Trace) Count(name string, delta int64) {}

// Observe implements Recorder as a no-op.
func (t *Trace) Observe(hist string, ms float64) {}

// Event implements Recorder.
func (t *Trace) Event(ev Event) {
	t.mu.Lock()
	if len(t.chunks) == 0 || len(*t.chunks[len(t.chunks)-1]) == traceChunkSize {
		t.chunks = append(t.chunks, traceChunkPool.Get().(*[]Event))
	}
	c := t.chunks[len(t.chunks)-1]
	*c = append(*c, ev)
	t.n++
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Reset drops all recorded events and recycles the storage chunks, so a
// long-lived recorder can be reused across runs without regrowing.
func (t *Trace) Reset() {
	t.mu.Lock()
	for _, c := range t.chunks {
		*c = (*c)[:0]
		traceChunkPool.Put(c)
	}
	t.chunks = nil
	t.n = 0
	t.mu.Unlock()
}

// Events returns the events sorted by (Rank, Seq). The result is a
// copy; the trace keeps accepting appends.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	out := make([]Event, 0, t.n)
	for _, c := range t.chunks {
		out = append(out, *c...)
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteNDJSON serializes the trace as rank-ordered newline-delimited
// JSON, one event per line. Lines are rendered by appendEventJSON into
// one reusable buffer — byte-identical to encoding/json (differentially
// tested) without its per-line allocation.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var line []byte
	for _, ev := range t.Events() {
		line = appendEventJSON(line[:0], ev)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses an event stream written by WriteNDJSON (or any
// NDJSON file of Event objects). Blank lines are skipped.
func ReadNDJSON(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
