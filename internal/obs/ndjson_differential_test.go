package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// diffEncode fails unless appendEventJSON renders ev byte-identically
// to encoding/json. Trace byte-identity across runs is a CI gate, so
// the hand-rolled encoder is held to exact equality, not just semantic
// equivalence.
func diffEncode(t *testing.T, ev Event) {
	t.Helper()
	want, err := json.Marshal(ev)
	if err != nil {
		t.Fatalf("json.Marshal(%+v): %v", ev, err)
	}
	got := appendEventJSON(nil, ev)
	if string(got) != string(want) {
		t.Fatalf("encoding mismatch for %+v:\n got %s\nwant %s", ev, got, want)
	}
}

func TestAppendEventJSONMatchesEncodingJSON(t *testing.T) {
	cases := []Event{
		{},
		{Rank: 1, Seq: 2, Kind: KindPageStart},
		{Rank: -5, Seq: 0, Kind: KindDNSQuery, Host: "www.example.com"},
		{Rank: 3, Seq: 9, Kind: KindCoalesceHit, Host: "a.example", Conn: "b.example", Detail: "origin"},
		{Rank: 7, Seq: 1, Kind: KindTLSHandshake, MS: 12.5},
		{Rank: 7, Seq: 1, Kind: KindTLSHandshake, MS: 0.0000001}, // %e territory
		{Rank: 7, Seq: 1, Kind: KindTLSHandshake, MS: 3.5e21},    // large %e
		{Rank: 7, Seq: 1, Kind: KindTLSHandshake, MS: -1e-9},     // negative small
		{Rank: 7, Seq: 1, Kind: KindTLSHandshake, MS: 1e21},      // boundary
		{Rank: 7, Seq: 1, Kind: KindTLSHandshake, MS: 0.000001},  // boundary %f
		{Rank: 7, Seq: 1, Kind: KindTLSHandshake, MS: math.Pi},   // shortest repr
		{Rank: 0, Seq: 0, Kind: "x", N: -1, DNS: 4, TLS: 3, IdealIP: 2, IdealOrigin: 1},
		{Kind: `quotes "and" back\slash`},
		{Kind: "html <escapes> & ampersand"},
		{Kind: "ctl\x00\x01\x1f\n\r\t chars"},
		{Kind: "unicode: héllo 世界 🚀"},
		{Kind: "line seps \u2028 and \u2029"},
		{Kind: string([]byte{0xff, 0xfe, 'a'})}, // invalid UTF-8
		{Kind: strings.Repeat("a", 300)},
		{Rank: math.MaxInt32, Seq: math.MinInt32, Kind: "extremes", N: math.MaxInt64},
	}
	for _, ev := range cases {
		diffEncode(t, ev)
	}
}

// TestAppendEventJSONMatchesEncodingJSONRandom fuzzes the encoder pair
// with seeded random events: random printable/binary strings and floats
// spanning the %f/%e formatting regimes.
func TestAppendEventJSONMatchesEncodingJSONRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randStr := func() string {
		n := rng.Intn(24)
		b := make([]byte, n)
		switch rng.Intn(3) {
		case 0: // printable ASCII
			for i := range b {
				b[i] = byte(0x20 + rng.Intn(0x5f))
			}
		case 1: // arbitrary bytes (often invalid UTF-8)
			rng.Read(b)
		default: // runes across planes
			rs := make([]rune, n)
			for i := range rs {
				rs[i] = rune(rng.Intn(0x3000))
			}
			return string(rs)
		}
		return string(b)
	}
	randFloat := func() float64 {
		switch rng.Intn(4) {
		case 0:
			return 0
		case 1:
			return rng.Float64() * 1e-5 // straddles the 1e-6 cutover
		case 2:
			return rng.Float64() * 1e22 // straddles the 1e21 cutover
		default:
			return rng.NormFloat64() * 100
		}
	}
	for i := 0; i < 5000; i++ {
		diffEncode(t, Event{
			Rank:   rng.Intn(2000) - 1000,
			Seq:    rng.Intn(100),
			Kind:   randStr(),
			Host:   randStr(),
			Conn:   randStr(),
			MS:     randFloat(),
			N:      rng.Intn(10) - 5,
			Detail: randStr(),
			DNS:    rng.Intn(3),
			TLS:    rng.Intn(3),
		})
	}
}

// TestWriteNDJSONRoundTrip: the hand-rolled writer must stay readable
// by ReadNDJSON, preserving every event and the (Rank, Seq) sort.
func TestWriteNDJSONRoundTrip(t *testing.T) {
	tr := NewTrace()
	rng := rand.New(rand.NewSource(7))
	want := 0
	for i := 0; i < traceChunkSize+100; i++ { // cross a chunk boundary
		tr.Event(Event{Rank: rng.Intn(50), Seq: i, Kind: KindDNSQuery, Host: "h", MS: float64(i) / 3})
		want++
	}
	var sb strings.Builder
	if err := tr.WriteNDJSON(&sb); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadNDJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != want {
		t.Fatalf("round trip %d events, want %d", len(evs), want)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1].Rank > evs[i].Rank || (evs[i-1].Rank == evs[i].Rank && evs[i-1].Seq > evs[i].Seq) {
			t.Fatalf("events out of (Rank, Seq) order at %d", i)
		}
	}
}

// TestTraceResetRecycles: Reset must empty the trace and leave it
// usable; recycled chunks must not leak events between uses.
func TestTraceResetRecycles(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < traceChunkSize*2+5; i++ {
		tr.Event(Event{Rank: 1, Seq: i, Kind: KindRetry})
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", tr.Len())
	}
	tr.Event(Event{Rank: 2, Seq: 0, Kind: KindGoAway})
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Kind != KindGoAway {
		t.Fatalf("trace after Reset = %+v, want single goaway", evs)
	}
}
