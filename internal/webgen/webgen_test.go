package webgen

import (
	"bytes"
	"fmt"
	"testing"

	"respectorigin/internal/asn"
	"respectorigin/internal/har"
	"respectorigin/internal/measure"
)

func genSmall(t *testing.T, n int) *Dataset {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Sites = n
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t, 100)
	b := genSmall(t, 100)
	if len(a.Pages) != len(b.Pages) || a.Failures != b.Failures {
		t.Fatalf("non-deterministic corpus size: %d/%d vs %d/%d",
			len(a.Pages), a.Failures, len(b.Pages), b.Failures)
	}
	for i := range a.Pages {
		if a.Pages[i].URL != b.Pages[i].URL || len(a.Pages[i].Entries) != len(b.Pages[i].Entries) {
			t.Fatalf("page %d differs", i)
		}
		if a.Pages[i].PLT() != b.Pages[i].PLT() {
			t.Fatalf("page %d PLT differs", i)
		}
	}
}

// ndjsonBytes serializes a dataset the way cmd/crawl does.
func ndjsonBytes(t *testing.T, ds *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := har.WriteJSON(&buf, ds.Pages); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The sharded engine's core guarantee: any worker count produces output
// byte-identical to the sequential path — pages, failures, and the
// merged ASN database alike.
func TestGenerateWorkersByteIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sites = 400
	cfg.Workers = 1
	seq, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqJSON := ndjsonBytes(t, seq)
	seqEntries := seq.ASDB.Entries()

	for _, w := range []int{4, 16} {
		cfg.Workers = w
		par, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ndjsonBytes(t, par), seqJSON) {
			t.Fatalf("Workers=%d: NDJSON differs from sequential", w)
		}
		if par.Failures != seq.Failures {
			t.Fatalf("Workers=%d: failures %d vs %d", w, par.Failures, seq.Failures)
		}
		parEntries := par.ASDB.Entries()
		if len(parEntries) != len(seqEntries) {
			t.Fatalf("Workers=%d: ASDB size %d vs %d", w, len(parEntries), len(seqEntries))
		}
		for i := range parEntries {
			if parEntries[i] != seqEntries[i] {
				t.Fatalf("Workers=%d: ASDB entry %d differs: %+v vs %+v",
					w, i, parEntries[i], seqEntries[i])
			}
		}
	}
}

// GenerateStream emits the same pages in the same rank order as
// Generate, for any worker count.
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sites = 300
	cfg.Workers = 1
	want, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := ndjsonBytes(t, want)

	for _, w := range []int{1, 8} {
		cfg.Workers = w
		var buf bytes.Buffer
		sw := har.NewStreamWriter(&buf)
		res, err := GenerateStream(cfg, sw.Write)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), wantJSON) {
			t.Fatalf("Workers=%d: streamed NDJSON differs", w)
		}
		if res.Pages != len(want.Pages) || res.Failures != want.Failures {
			t.Fatalf("Workers=%d: stream result %d/%d, want %d/%d",
				w, res.Pages, res.Failures, len(want.Pages), want.Failures)
		}
	}
}

// A failing writer aborts the stream with its error and leaves no
// goroutines stuck (the race detector and -timeout cover the latter).
func TestGenerateStreamEmitError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sites = 500
	cfg.Workers = 8
	n := 0
	_, err := GenerateStream(cfg, func(p *har.Page) error {
		n++
		if n == 10 {
			return errWriter
		}
		return nil
	})
	if err != errWriter {
		t.Fatalf("err = %v, want errWriter", err)
	}
}

var errWriter = fmt.Errorf("writer failed")

func TestTailRegistryMergeAndRegister(t *testing.T) {
	a, b := newTailRegistry(), newTailRegistry()
	a.use(5)
	a.use(1)
	b.use(5) // duplicate across shards: registers once
	b.use(9)
	a.merge(b)
	db := asn.NewDB()
	a.register(db)
	if db.Len() != 3 {
		t.Fatalf("Len = %d, want 3", db.Len())
	}
	for _, i := range []int{1, 5, 9} {
		as := asn.ASN(TailASNBase + i)
		if db.Org(as) == "" {
			t.Errorf("tail AS %d not registered", i)
		}
		if got := db.LookupASN(tailPrefix(i).Addr()); got != as {
			t.Errorf("tail prefix %d -> AS%d, want AS%d", i, got, as)
		}
	}
}

func TestGenerateValidPages(t *testing.T) {
	ds := genSmall(t, 300)
	if len(ds.Pages) == 0 {
		t.Fatal("no pages generated")
	}
	for _, p := range ds.Pages {
		if err := p.Validate(); err != nil {
			t.Fatalf("page %s invalid: %v", p.URL, err)
		}
	}
}

func TestSuccessRate(t *testing.T) {
	ds := genSmall(t, 2000)
	got := float64(len(ds.Pages)) / 2000
	if got < 0.58 || got > 0.68 {
		t.Errorf("success rate %.3f, want ≈0.635", got)
	}
}

func TestRequestCountDistribution(t *testing.T) {
	ds := genSmall(t, 2000)
	var counts []int
	for _, p := range ds.Pages {
		counts = append(counts, len(p.Entries))
	}
	med := measure.MedianInts(counts)
	// Paper: median 81 requests per page.
	if med < 55 || med > 110 {
		t.Errorf("median requests = %.0f, want ≈81", med)
	}
}

func TestDNSTLSMedians(t *testing.T) {
	ds := genSmall(t, 2000)
	var dns, tls []int
	for _, p := range ds.Pages {
		dns = append(dns, p.DNSQueries())
		tls = append(tls, p.TLSConnections())
	}
	mDNS, mTLS := measure.MedianInts(dns), measure.MedianInts(tls)
	// Paper medians: 14 DNS, 16 TLS.
	if mDNS < 8 || mDNS > 20 {
		t.Errorf("median DNS = %.1f, want ≈14", mDNS)
	}
	if mTLS < 8 || mTLS > 22 {
		t.Errorf("median TLS = %.1f, want ≈16", mTLS)
	}
	if mTLS < mDNS-1 {
		t.Errorf("TLS median (%.1f) should not trail DNS median (%.1f)", mTLS, mDNS)
	}
}

func TestPLTDistribution(t *testing.T) {
	ds := genSmall(t, 1000)
	var plt []float64
	for _, p := range ds.Pages {
		plt = append(plt, p.PLT())
	}
	med := measure.Median(plt)
	// Paper: median 5746 ms. Accept a broad band around it.
	if med < 2000 || med > 12000 {
		t.Errorf("median PLT = %.0f ms, want ≈5746", med)
	}
}

func TestASConcentration(t *testing.T) {
	ds := genSmall(t, 2000)
	c := measure.NewCounter()
	for _, p := range ds.Pages {
		for _, e := range p.Entries {
			c.Add(ds.ASDB.Org(asn.ASN(e.ServerASN)), 1)
		}
	}
	top := c.Top(10)
	var cum float64
	for _, e := range top {
		cum += e.Share
	}
	// Paper: top-10 ASes serve 63.68% of requests.
	if cum < 45 || cum > 80 {
		t.Errorf("top-10 AS share = %.1f%%, want ≈64%%", cum)
	}
	if top[0].Key != "Google" {
		t.Errorf("top AS = %s, want Google", top[0].Key)
	}
}

func TestUniqueASesPerPage(t *testing.T) {
	ds := genSmall(t, 2000)
	var asns []int
	single := 0
	for _, p := range ds.Pages {
		n := len(p.UniqueASNs())
		asns = append(asns, n)
		if n == 1 {
			single++
		}
	}
	med := measure.MedianInts(asns)
	// Paper: median ≈6 unique ASes; 6.5% single-AS pages.
	if med < 3 || med > 10 {
		t.Errorf("median unique ASes = %.1f, want ≈6", med)
	}
	frac := float64(single) / float64(len(ds.Pages))
	if frac < 0.03 || frac > 0.12 {
		t.Errorf("single-AS fraction = %.3f, want ≈0.065", frac)
	}
}

func TestProtocolMix(t *testing.T) {
	ds := genSmall(t, 1000)
	c := measure.NewCounter()
	for _, p := range ds.Pages {
		for _, e := range p.Entries {
			c.Add(e.Protocol, 1)
		}
	}
	h2Share := 100 * float64(c.Count("h2")) / float64(c.Total())
	if h2Share < 68 || h2Share > 79 {
		t.Errorf("h2 share = %.1f%%, want ≈73.6%%", h2Share)
	}
	secure := 0
	total := 0
	for _, p := range ds.Pages {
		for _, e := range p.Entries {
			total++
			if e.Secure {
				secure++
			}
		}
	}
	if s := float64(secure) / float64(total); s < 0.97 || s > 1 {
		t.Errorf("secure share = %.4f, want ≈0.985", s)
	}
}

func TestSANDistribution(t *testing.T) {
	ds := genSmall(t, 3000)
	var sans []int
	for _, p := range ds.Pages {
		sans = append(sans, len(p.Entries[0].CertSANs))
	}
	med := measure.MedianInts(sans)
	// Paper: median existing SAN size is 2 (Figure 4).
	if med < 2 || med > 3 {
		t.Errorf("median SAN size = %.1f, want 2", med)
	}
	h := measure.Histogram(sans)
	if h[2] < h[3] || h[2] < h[1] {
		t.Errorf("SAN=2 should dominate: %v", map[int]int{1: h[1], 2: h[2], 3: h[3]})
	}
	// Zero-SAN roots come from the 3.5% Table 8 bucket plus the ~1.5%
	// of insecure root loads that carry no certificate at all.
	zeroFrac := float64(h[0]) / float64(len(sans))
	if zeroFrac < 0.015 || zeroFrac > 0.085 {
		t.Errorf("zero-SAN fraction = %.3f, want ≈0.05", zeroFrac)
	}
}

func TestIssuersAssigned(t *testing.T) {
	ds := genSmall(t, 500)
	c := measure.NewCounter()
	for _, p := range ds.Pages {
		for _, e := range p.Entries {
			if e.NewTLS && e.CertIssuer != "" {
				c.Add(e.CertIssuer, 1)
			}
		}
	}
	if c.Total() == 0 {
		t.Fatal("no issuers recorded")
	}
	top := c.Top(1)
	if top[0].Key != "Google Trust Services CA 101" {
		t.Errorf("top issuer = %s", top[0].Key)
	}
}

func TestPopularHostsAppear(t *testing.T) {
	ds := genSmall(t, 1000)
	c := measure.NewCounter()
	for _, p := range ds.Pages {
		for _, e := range p.Entries {
			c.Add(e.Host, 1)
		}
	}
	for _, ph := range []string{"fonts.gstatic.com", "www.google-analytics.com"} {
		if c.Count(ph) == 0 {
			t.Errorf("popular host %s never requested", ph)
		}
	}
}

func TestASDBCoversAllIPs(t *testing.T) {
	ds := genSmall(t, 300)
	for _, p := range ds.Pages {
		for _, e := range p.Entries {
			got := ds.ASDB.LookupASN(e.ServerIP)
			if uint32(got) != e.ServerASN {
				t.Fatalf("IP %v: DB says AS%d, entry says AS%d (%s)", e.ServerIP, got, e.ServerASN, e.Host)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Generate(Config{Sites: 0}); err == nil {
		t.Error("zero sites accepted")
	}
}

func TestRebuildASDBRoundTrip(t *testing.T) {
	ds := genSmall(t, 200)
	var buf bytes.Buffer
	if err := har.WriteJSON(&buf, ds.Pages); err != nil {
		t.Fatal(err)
	}
	pages, err := har.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	db := RebuildASDB(pages)
	for _, p := range pages {
		for i := range p.Entries {
			e := &p.Entries[i]
			if got := uint32(db.LookupASN(e.ServerIP)); got != e.ServerASN {
				t.Fatalf("rebuilt DB: IP %v -> AS%d, want AS%d (%s)", e.ServerIP, got, e.ServerASN, e.Host)
			}
		}
	}
	// Provider org names survive the rebuild.
	if db.Org(13335) != "Cloudflare" {
		t.Error("provider org lost")
	}
}

// Rank-range runs are the multi-process sharding primitive: generating
// [1,N+1) in one run must equal concatenating independent sub-range
// runs byte for byte, with the same failures and merged ASN database.
func TestGenerateStreamRankRangeByteIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sites = 301 // deliberately not divisible by the shard count
	full, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fullJSON := ndjsonBytes(t, full)

	var buf bytes.Buffer
	var failures int
	merged := asn.NewDB()
	bounds := []int{1, 101, 202, cfg.Sites + 1}
	for i := 0; i+1 < len(bounds); i++ {
		shCfg := cfg
		shCfg.RankLo, shCfg.RankHi = bounds[i], bounds[i+1]
		shCfg.Workers = 1 + i%2*3 // mix worker counts across shards
		sw := har.NewStreamWriter(&buf)
		res, err := GenerateStream(shCfg, sw.Write)
		if err != nil {
			t.Fatalf("shard [%d,%d): %v", bounds[i], bounds[i+1], err)
		}
		failures += res.Failures
		if err := merged.Merge(res.ASDB); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf.Bytes(), fullJSON) {
		t.Fatal("concatenated rank-range runs differ from the full run")
	}
	if failures != full.Failures {
		t.Fatalf("sharded failures %d, full run %d", failures, full.Failures)
	}
	fe, me := full.ASDB.Entries(), merged.Entries()
	if len(fe) != len(me) {
		t.Fatalf("merged ASDB has %d entries, full run %d", len(me), len(fe))
	}
	for i := range fe {
		if fe[i] != me[i] {
			t.Fatalf("ASDB entry %d differs: %+v vs %+v", i, me[i], fe[i])
		}
	}
}

func TestGenerateStreamRankRangeValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sites = 10
	for _, tc := range [][2]int{{0, 5}, {1, 13}, {7, 3}} {
		cfg.RankLo, cfg.RankHi = tc[0], tc[1]
		if _, err := GenerateStream(cfg, func(*har.Page) error { return nil }); err == nil {
			t.Fatalf("rank range [%d,%d) accepted", tc[0], tc[1])
		}
	}
	// Empty range is legal: zero pages, providers still registered.
	cfg.RankLo, cfg.RankHi = 4, 4
	res, err := GenerateStream(cfg, func(*har.Page) error { t.Fatal("emit on empty range"); return nil })
	if err != nil || res.Pages != 0 || res.ASDB == nil {
		t.Fatalf("empty range: %+v, %v", res, err)
	}
}
