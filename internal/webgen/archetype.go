package webgen

import "fmt"

// Archetype selects the page-structure universe a corpus is generated
// in. The baseline universe is the paper's measured marginal
// distributions; the other archetypes deform one structural knob each,
// so a scenario sweep can ask how coalescing behaves when the web is
// built differently — not just how it behaves on the web as measured.
type Archetype string

// Page archetypes.
const (
	// ArchetypeBaseline is the measured-web universe. The empty string
	// selects it too, so the zero Config keeps its historical output
	// byte for byte.
	ArchetypeBaseline Archetype = "baseline"

	// ArchetypeSharded is the HTTP/1.1-era domain-sharding universe:
	// every site with a SAN budget fans its first-party content across
	// the full shard set, and every shard lives on its own server
	// addresses. Distinct addresses defeat IP-based coalescing, so only
	// ORIGIN-frame reuse under a covering certificate can merge the
	// shards back — the in-sim form of the Sander et al. observation
	// that sharding is what coalescing has to undo.
	ArchetypeSharded Archetype = "sharded"

	// ArchetypeMigration is the mid-crawl CDN-migration universe: part
	// way through each page load the first-party cluster moves to a new
	// network. Hosts re-resolve to disjoint addresses, pooled
	// connections to the old home go stale, and reuse attempts bounce
	// with 421s — the pool-eviction stress case.
	ArchetypeMigration Archetype = "migration"
)

// Archetypes returns the selectable universes in matrix order.
func Archetypes() []Archetype {
	return []Archetype{ArchetypeBaseline, ArchetypeSharded, ArchetypeMigration}
}

// Validate rejects unknown archetype names at configuration time.
func (a Archetype) Validate() error {
	switch a {
	case "", ArchetypeBaseline, ArchetypeSharded, ArchetypeMigration:
		return nil
	}
	return fmt.Errorf("webgen: unknown archetype %q", string(a))
}

func (a Archetype) String() string {
	if a == "" {
		return string(ArchetypeBaseline)
	}
	return string(a)
}
