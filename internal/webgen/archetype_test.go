package webgen

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"respectorigin/internal/har"
)

func genArchetype(t *testing.T, a Archetype, sites, workers int) *Dataset {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Sites = sites
	cfg.Workers = workers
	cfg.Archetype = a
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// The zero value and the explicit baseline name select the same
// universe, byte for byte — the gate every archetype branch hides
// behind.
func TestBaselineArchetypeIsZeroValue(t *testing.T) {
	zero := genArchetype(t, "", 200, 1)
	named := genArchetype(t, ArchetypeBaseline, 200, 1)
	if !bytes.Equal(ndjsonBytes(t, zero), ndjsonBytes(t, named)) {
		t.Fatal("Archetype \"\" and \"baseline\" generate different corpora")
	}
}

func TestUnknownArchetypeRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sites = 10
	cfg.Archetype = "kitchen-sink"
	if _, err := Generate(cfg); err == nil || !strings.Contains(err.Error(), "kitchen-sink") {
		t.Fatalf("unknown archetype accepted: err=%v", err)
	}
}

// The non-baseline universes keep the engine's core guarantee: pages
// are pure functions of (seed, rank), so any worker count produces
// byte-identical output.
func TestArchetypesWorkerInvariant(t *testing.T) {
	for _, a := range []Archetype{ArchetypeSharded, ArchetypeMigration} {
		seq := ndjsonBytes(t, genArchetype(t, a, 300, 1))
		for _, w := range []int{4, 16} {
			if !bytes.Equal(ndjsonBytes(t, genArchetype(t, a, 300, w)), seq) {
				t.Fatalf("%s: Workers=%d differs from sequential", a, w)
			}
		}
	}
}

// shardHosts returns the page's first-party shard hostnames.
func shardHosts(p *har.Page) map[string]bool {
	apex := strings.TrimPrefix(p.Host, "www.")
	out := map[string]bool{}
	for _, prefix := range []string{"static", "img", "cdn", "assets", "media"} {
		out[prefix+"."+apex] = true
	}
	return out
}

// In the sharded universe, every SAN-carrying site fans out across the
// full shard set and no shard shares a server address with the root
// host: IP coalescing must come up empty on the first-party cluster.
func TestShardedArchetypeDefeatsIPOverlap(t *testing.T) {
	ds := genArchetype(t, ArchetypeSharded, 300, 4)
	fullFanOuts := 0
	for _, p := range ds.Pages {
		shards := shardHosts(p)
		rootAddrs := map[string]bool{}
		seen := map[string]bool{}
		for _, e := range p.Entries {
			if e.Host == p.Host && e.NewDNS {
				for _, a := range e.DNSAnswer {
					rootAddrs[a.String()] = true
				}
			}
		}
		for _, e := range p.Entries {
			if !shards[e.Host] {
				continue
			}
			seen[e.Host] = true
			if rootAddrs[e.ServerIP.String()] {
				t.Fatalf("page %d: shard %s shares the root server %s", p.Rank, e.Host, e.ServerIP)
			}
			for _, a := range e.DNSAnswer {
				if rootAddrs[a.String()] {
					t.Fatalf("page %d: shard %s answer overlaps the root set at %s", p.Rank, e.Host, a)
				}
			}
		}
		if len(seen) == 5 {
			fullFanOuts++
		}
	}
	if fullFanOuts == 0 {
		t.Fatal("no page shows the full 5-shard fan-out")
	}
}

// In the migration universe, pages whose first-party cluster has
// requests past the migration wave re-resolve: the root host shows a
// second NewDNS entry whose answer set is disjoint from the first, and
// post-migration requests connect into the new set.
func TestMigrationArchetypeReResolvesDisjoint(t *testing.T) {
	ds := genArchetype(t, ArchetypeMigration, 300, 4)
	migrated := 0
	for _, p := range ds.Pages {
		var answers [][]string
		for _, e := range p.Entries {
			if e.Host == p.Host && e.NewDNS {
				set := make([]string, 0, len(e.DNSAnswer))
				for _, a := range e.DNSAnswer {
					set = append(set, a.String())
				}
				answers = append(answers, set)
			}
		}
		if len(answers) < 2 {
			continue
		}
		if len(answers) > 2 {
			t.Fatalf("page %d: root resolved %d times, want at most 2", p.Rank, len(answers))
		}
		migrated++
		old := map[string]bool{}
		for _, a := range answers[0] {
			old[a] = true
		}
		for _, a := range answers[1] {
			if old[a] {
				t.Fatalf("page %d: post-migration answer %s overlaps the old home", p.Rank, a)
			}
		}
		// Every root entry's server is in whichever answer set was
		// current when it ran.
		inSecond := map[string]bool{}
		for _, a := range answers[1] {
			inSecond[a] = true
		}
		for _, e := range p.Entries {
			if e.Host == p.Host && !old[e.ServerIP.String()] && !inSecond[e.ServerIP.String()] {
				t.Fatalf("page %d: root entry served from %s, outside both homes", p.Rank, e.ServerIP)
			}
		}
	}
	if migrated == 0 {
		t.Fatal("no page shows a mid-crawl migration")
	}
	t.Logf("migrated pages: %d of %d", migrated, len(ds.Pages))
}

// The baseline universe must not regress: a corpus generated with the
// field left zero matches one from a build that predates the field.
// (Guarded indirectly by TestGenerateWorkersByteIdentical and the CI
// determinism steps; here we pin the structural invariant that the
// archetype branches never draw from the page RNG in baseline mode.)
func TestBaselineDrawsUnchanged(t *testing.T) {
	base := genArchetype(t, ArchetypeBaseline, 150, 1)
	if len(base.Pages) == 0 {
		t.Fatal("empty corpus")
	}
	// Fingerprint a few structural values that would shift if any gated
	// branch consumed an extra draw.
	var sig []string
	for _, p := range base.Pages[:5] {
		sig = append(sig, fmt.Sprintf("%s/%d/%.3f", p.Host, len(p.Entries), p.PLT()))
	}
	again := genArchetype(t, "", 150, 1)
	var sig2 []string
	for _, p := range again.Pages[:5] {
		sig2 = append(sig2, fmt.Sprintf("%s/%d/%.3f", p.Host, len(p.Entries), p.PLT()))
	}
	for i := range sig {
		if sig[i] != sig2[i] {
			t.Fatalf("baseline fingerprint drifted: %s vs %s", sig[i], sig2[i])
		}
	}
}
