// Package webgen generates the synthetic web corpus the reproduction
// runs on: ranked websites whose page-load timelines, destination
// networks, content types, protocols, certificates and popular
// third-party dependencies follow the marginal distributions the paper
// published for its 315,796-site Tranco crawl (§3.3).
//
// The generator is fully deterministic for a given seed: every site's
// structure derives from its own sub-RNG, so corpora are reproducible
// and scale-free (generate 1,000 or 500,000 sites with the same shape).
package webgen

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"respectorigin/internal/asn"
	"respectorigin/internal/har"
	"respectorigin/internal/netsim"
	"respectorigin/internal/parallel"
)

// Config parameterizes corpus generation.
type Config struct {
	// Sites is the number of ranked sites to attempt (the paper's list
	// had 500K attempts).
	Sites int
	// Seed drives all randomness.
	Seed int64
	// SuccessRate is the fraction of attempts that load (§3.1: 63.51%).
	SuccessRate float64
	// Net configures the latency model; zero value uses defaults.
	Net netsim.Params
	// Workers is the number of generation goroutines; values ≤ 0 select
	// runtime.GOMAXPROCS. Every page is a pure function of (Seed, rank),
	// so output is byte-identical for every worker count.
	Workers int
	// Archetype selects the page-structure universe (baseline, sharded,
	// migration). The zero value is the baseline measured-web universe
	// and leaves output byte-identical to a Config without the field.
	Archetype Archetype
	// RankLo and RankHi restrict generation to ranks [RankLo, RankHi).
	// Zero values mean the whole corpus, [1, Sites+1). Pages are pure
	// functions of (Seed, rank, Sites), so a sub-range run emits exactly
	// the pages a full run would for those ranks — the invariant that
	// lets independent OS processes each crawl one shard and have the
	// concatenation reproduce a single-process crawl byte for byte.
	// Sites stays the full corpus size in sharded runs.
	RankLo, RankHi int
}

// DefaultConfig returns a corpus configuration matching the paper's
// collection at a reduced default scale.
func DefaultConfig() Config {
	return Config{
		Sites:       20000,
		Seed:        1,
		SuccessRate: 0.6351,
		Net:         netsim.DefaultParams(),
	}
}

// Dataset is a generated corpus.
type Dataset struct {
	Pages    []*har.Page // successful page loads, rank order
	Failures int         // attempts that failed (non-200, CAPTCHA)
	ASDB     *asn.DB     // IP→ASN database covering every generated IP
}

// Generate builds a corpus in memory across cfg.Workers goroutines.
// Output is identical for every worker count; see GenerateStream for
// the streaming form that avoids buffering the whole corpus.
func Generate(cfg Config) (*Dataset, error) {
	ds := &Dataset{}
	res, err := GenerateStream(cfg, func(p *har.Page) error {
		ds.Pages = append(ds.Pages, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	ds.Failures = res.Failures
	ds.ASDB = res.ASDB
	return ds, nil
}

// StreamResult summarizes a streamed generation run.
type StreamResult struct {
	Pages    int // successful page loads emitted
	Failures int // attempts that failed (non-200, CAPTCHA)
	ASDB     *asn.DB
}

// GenerateStream builds a corpus across cfg.Workers goroutines and
// invokes emit for every successful page in strict rank order as shards
// complete, without buffering the whole corpus in memory. emit runs on
// the calling goroutine; returning an error aborts generation.
//
// Ranks are split into contiguous shards. Each shard generates with a
// private tail-AS registry and shard-local ASN database; shard
// databases merge into the returned ASDB in shard order, so both the
// page stream and the database are byte-identical for every worker
// count. In-flight shards are bounded, so a slow writer cannot make
// memory grow with corpus size.
func GenerateStream(cfg Config, emit func(*har.Page) error) (*StreamResult, error) {
	if cfg.Sites <= 0 {
		return nil, fmt.Errorf("webgen: Sites must be positive")
	}
	if cfg.SuccessRate <= 0 || cfg.SuccessRate > 1 {
		cfg.SuccessRate = 0.6351
	}
	if cfg.Net.RTTMs == 0 {
		cfg.Net = netsim.DefaultParams()
	}
	if err := cfg.Archetype.Validate(); err != nil {
		return nil, err
	}
	rankLo, rankHi := cfg.RankLo, cfg.RankHi
	if rankLo == 0 && rankHi == 0 {
		rankLo, rankHi = 1, cfg.Sites+1
	}
	if rankLo < 1 || rankHi > cfg.Sites+1 || rankLo > rankHi {
		return nil, fmt.Errorf("webgen: rank range [%d,%d) outside [1,%d)", rankLo, rankHi, cfg.Sites+1)
	}
	nranks := rankHi - rankLo
	if nranks == 0 {
		// Empty shard (e.g. more shards than sites): a legal no-op run.
		db := asn.NewDB()
		registerProviders(db)
		return &StreamResult{ASDB: db}, nil
	}
	workers := parallel.Normalize(cfg.Workers)
	db := asn.NewDB()
	registerProviders(db)
	res := &StreamResult{ASDB: db}

	emitShard := func(sh shardResult) error {
		for _, p := range sh.pages {
			if err := emit(p); err != nil {
				return err
			}
		}
		res.Pages += len(sh.pages)
		res.Failures += sh.failures
		return db.Merge(sh.db)
	}

	if workers == 1 {
		return res, emitShard(genShard(cfg, rankLo, rankHi))
	}

	span := (nranks + workers*8 - 1) / (workers * 8)
	if span < 1 {
		span = 1
	}
	if span > 256 {
		span = 256
	}
	nshards := (nranks + span - 1) / span
	results := make([]chan shardResult, nshards)
	for i := range results {
		results[i] = make(chan shardResult, 1)
	}
	// tokens bounds generated-but-unemitted shards; done aborts workers
	// when the writer fails.
	tokens := make(chan struct{}, workers*2)
	done := make(chan struct{})
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= nshards {
					return
				}
				select {
				case tokens <- struct{}{}:
				case <-done:
					return
				}
				lo := rankLo + s*span
				hi := lo + span
				if hi > rankHi {
					hi = rankHi
				}
				results[s] <- genShard(cfg, lo, hi)
			}
		}()
	}
	var emitErr error
	for s := 0; s < nshards && emitErr == nil; s++ {
		emitErr = emitShard(<-results[s])
		<-tokens
	}
	close(done)
	wg.Wait()
	if emitErr != nil {
		return nil, emitErr
	}
	return res, nil
}

// shardResult is one contiguous rank block's output.
type shardResult struct {
	pages    []*har.Page // successful loads, rank order
	failures int
	db       *asn.DB // shard-local tail-AS registrations
}

// genShard generates ranks [lo, hi) with a private generator.
func genShard(cfg Config, lo, hi int) shardResult {
	g := &generator{cfg: cfg, tails: newTailRegistry()}
	var sh shardResult
	for rank := lo; rank < hi; rank++ {
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(rank)))
		if rng.Float64() > cfg.SuccessRate {
			sh.failures++
			continue
		}
		sh.pages = append(sh.pages, g.genPage(rank, rng))
	}
	sh.db = asn.NewDB()
	g.tails.register(sh.db)
	return sh
}

type generator struct {
	cfg   Config
	net   *netsim.Network // per-page latency model, reseeded in genPage
	tails *tailRegistry
}

func registerProviders(db *asn.DB) {
	for _, p := range Providers {
		prefix := netip.MustParsePrefix(p.Prefix)
		db.Add(prefix, asn.ASN(p.ASN), p.Name)
	}
}

// tailASSpace is the number of distinct long-tail ASes the generator
// draws from (the paper saw 13,316 distinct ASes; /16-per-AS addressing
// bounds us to 8,000 — wide enough that intra-page collisions vanish).
const tailASSpace = 8000

// tailPrefix returns tail AS i's /16 allocation, drawn from octets
// 160..191 to stay clear of every provider prefix.
func tailPrefix(i int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(160 + i/250), byte(i % 250), 0, 0}), 16)
}

// tailAS allocates and returns a long-tail AS for index i via the
// shard's registry; the ASN database is untouched until shard end.
func (g *generator) tailAS(i int) uint32 { return g.tails.use(i) }

// tailRegistry tracks the long-tail ASes one generator shard has
// allocated. It replaces the old pattern of probing the shared ASN
// database (db.Org(...) == "") and mutating it mid-generation — a data
// race the moment two goroutines generate pages, and a latent
// re-registration of the same /16 prefix — with an explicit merge-safe
// set that registers everything at shard end in sorted order.
type tailRegistry struct {
	used map[int]bool
}

func newTailRegistry() *tailRegistry { return &tailRegistry{used: make(map[int]bool)} }

// use marks tail index i as allocated and returns its AS number.
func (t *tailRegistry) use(i int) uint32 {
	t.used[i] = true
	return uint32(TailASNBase + i)
}

// merge folds another registry's allocations in; the union is
// order-independent.
func (t *tailRegistry) merge(o *tailRegistry) {
	for i := range o.used {
		t.used[i] = true
	}
}

// register writes the allocated tail ASes into db in ascending index
// order, so the resulting database is independent of allocation order.
func (t *tailRegistry) register(db *asn.DB) {
	idx := make([]int, 0, len(t.used))
	for i := range t.used {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		db.Add(tailPrefix(i), asn.ASN(TailASNBase+i), fmt.Sprintf("Tail-AS-%d", i))
	}
}

// hostAddr deterministically assigns host IPs inside a provider prefix.
func hostAddr(prefix netip.Prefix, h uint32) netip.Addr {
	a := prefix.Addr().As4()
	if prefix.Bits() <= 16 {
		a[2] = byte(h >> 8)
		a[3] = byte(h)
	} else {
		a[3] = byte(h)
	}
	if a[3] == 0 {
		a[3] = 1
	}
	return netip.AddrFrom4(a)
}

// siteProvider picks the hosting provider for a site (Table 9 shares);
// the remainder self-hosts on a tail AS.
func (g *generator) siteProvider(rng *rand.Rand) (name string, asnum uint32, prefix netip.Prefix) {
	x := rng.Float64() * 100
	acc := 0.0
	for _, p := range Providers {
		acc += p.SiteShare
		if x < acc {
			return p.Name, p.ASN, netip.MustParsePrefix(p.Prefix)
		}
	}
	i := rng.Intn(tailASSpace)
	as := g.tailAS(i)
	return fmt.Sprintf("Tail-AS-%d", i), as, tailPrefix(i)
}

// reqCount samples per-page request totals: lognormal with median 81,
// mean ≈113, scaled slightly down with rank (Table 1: 89 → 78).
func reqCount(rank, totalSites int, rng *rand.Rand) int {
	mu := math.Log(81)
	sigma := 0.8
	bucketFactor := 1.09 - 0.13*float64(rank)/float64(totalSites) // 1.09 → 0.96
	v := math.Exp(mu+sigma*rng.NormFloat64()) * bucketFactor
	n := int(v)
	if n < 3 {
		n = 3
	}
	if n > 2500 {
		n = 2500
	}
	return n
}

// sanCount samples the root certificate's existing SAN size from the
// Table 8 measured distribution with the Figure 5 long tail.
func sanCount(rng *rand.Rand) int {
	x := rng.Float64() * 100
	// Measured shares from Table 8 (counts / 315796).
	steps := []struct {
		size  int
		share float64
	}{
		{2, 45.29}, {3, 23.15}, {1, 9.59}, {0, 3.52}, {8, 2.64},
		{4, 2.29}, {9, 2.02}, {6, 1.31}, {5, 1.00}, {10, 0.81},
		{7, 0.75}, {11, 0.70}, {12, 0.62}, {13, 0.55}, {14, 0.48},
		{15, 0.42}, {16, 0.37}, {18, 0.33}, {20, 0.29}, {24, 0.26},
	}
	acc := 0.0
	for _, s := range steps {
		acc += s.share
		if x < acc {
			return s.size
		}
	}
	// Long tail: pareto-ish between 25 and ~2000; ~0.07% above 250.
	u := rng.Float64()
	size := int(25 * math.Pow(1-u, -0.55))
	if size > 2000 {
		size = 2000
	}
	return size
}

type hostInfo struct {
	name     string
	provider string
	asn      uint32
	addrs    []netip.Addr
	reqs     int
	weight   float64 // request-share weight for popular hosts
	// deepDiscovery spreads the host's first reference across the whole
	// dependency depth (sharded and provider-hosted subresources are
	// discovered by CSS/JS at any depth); hosts without it are
	// referenced near the top of the document.
	deepDiscovery bool
}

// genPage generates one site's page load.
func (g *generator) genPage(rank int, rng *rand.Rand) *har.Page {
	// Each page gets its own latency-model stream derived from the page
	// RNG, so page content is a pure function of (seed, rank) and never
	// depends on generation order — the invariant the sharded engine and
	// the Workers-count determinism guarantee rest on.
	g.net = netsim.New(g.cfg.Net, rng.Int63())

	siteHost := fmt.Sprintf("www.site-%d.example", rank)
	apex := fmt.Sprintf("site-%d.example", rank)

	// Sample the root certificate's existing SAN size first: zero-SAN
	// sites are the §4.3 special case that serves its own subresources
	// and has no coalescable hostnames (the paper found only 2 of
	// 11,131 needed changes), so their structure is constrained below.
	nSAN := sanCount(rng)

	provName, provASN, provPrefix := g.siteProvider(rng)
	if nSAN == 0 {
		// Self-hosted on a dedicated tail AS: no same-provider third
		// parties to coalesce.
		i := rng.Intn(tailASSpace)
		as := g.tailAS(i)
		provName = fmt.Sprintf("Tail-AS-%d", i)
		provASN = as
		provPrefix = tailPrefix(i)
	}

	total := reqCount(rank, g.cfg.Sites, rng)

	// --- Assemble the host list ---
	var hosts []hostInfo
	addWeighted := func(name, provider string, asnum uint32, prefix netip.Prefix, reqs int, weight float64) {
		nAddr := 1 + rng.Intn(3)
		addrs := make([]netip.Addr, 0, nAddr)
		for a := 0; a < nAddr; a++ {
			addrs = append(addrs, hostAddr(prefix, hash32(name)+uint32(a)))
		}
		hosts = append(hosts, hostInfo{name: name, provider: provider, asn: asnum, addrs: addrs, reqs: reqs, weight: weight})
	}
	addHost := func(name, provider string, asnum uint32, prefix netip.Prefix, reqs int) {
		addWeighted(name, provider, asnum, prefix, reqs, 0)
	}

	// Root host.
	addHost(siteHost, provName, provASN, provPrefix, 1)

	// 6.5% of pages use a single AS (Figure 1); they get shards but no
	// third parties.
	singleAS := rng.Float64() < 0.065

	// Own sharded subdomains (HTTP/1.1-era practice, §2.1). Zero-SAN
	// sites serve everything from the root host.
	nShards := 0
	if nSAN > 0 && rng.Float64() < 0.88 {
		nShards = 1 + rng.Intn(5)
	}
	shardNames := []string{"static", "img", "cdn", "assets", "media"}
	if g.cfg.Archetype == ArchetypeSharded && nSAN > 0 {
		// The sharding universe: every SAN-carrying site fans out across
		// the full shard set.
		nShards = len(shardNames)
	}
	for s := 0; s < nShards; s++ {
		addHost(shardNames[s]+"."+apex, provName, provASN, provPrefix, 0)
		hosts[len(hosts)-1].deepDiscovery = true
		if g.cfg.Archetype == ArchetypeSharded {
			// Sharded shards always get their own server addresses (the
			// per-name hash already spread them): no same-server overlap,
			// so IP coalescing finds nothing and only ORIGIN + a covering
			// certificate can merge the shards back.
			continue
		}
		// Some shards live on the same server as the root host: these
		// are the "missed opportunities" ideal IP coalescing recovers
		// (§4.2).
		if rng.Float64() < 0.65 {
			hosts[len(hosts)-1].addrs = hosts[0].addrs
		}
	}

	if !singleAS {
		// Popular third parties (Table 7 / Table 9).
		inclusion := []float64{0.62, 0.66, 0.52, 0.56, 0.30, 0.34, 0.34, 0.34, 0.56, 0.18}
		for i, ph := range PopularHosts {
			if rng.Float64() < inclusion[i] {
				p := ProviderFor(ph.Provider)
				addWeighted(ph.Host, p.Name, p.ASN, netip.MustParsePrefix(p.Prefix), 0, ph.Share)
				hosts[len(hosts)-1].deepDiscovery = true
			}
		}
		// Secondary provider-bound hosts (the rest of Table 2). Unlike
		// the Table 7 hostnames these spread over many distinct names
		// per provider (e.g. per-customer cloudfront.net hosts), so no
		// single hostname ranks highly.
		secondaryInclusion := []float64{0.50, 0.40, 0.35, 0.22, 0.20, 0.15}
		for i, sh := range SecondaryHosts {
			if rng.Float64() < secondaryInclusion[i] {
				p := ProviderFor(sh.Provider)
				name := fmt.Sprintf("n%d.%s", rng.Intn(500), sh.Host)
				addWeighted(name, p.Name, p.ASN, netip.MustParsePrefix(p.Prefix), 0, sh.Share)
			}
		}
		// Same-provider popular hosts (the Table 9 candidates).
		if extras, ok := ProviderPopularHosts[provName]; ok {
			use := map[string]float64{
				"cdnjs.cloudflare.com":     0.1621,
				"sni.cloudflaressl.com":    0.1258,
				"ajax.cloudflare.com":      0.1128,
				"cdn.jsdelivr.net":         0.0869,
				"d1.cloudfront.net":        0.2003,
				"script.hotjar.com":        0.1477,
				"assets.s3.amazonaws.com":  0.1201,
				"www.google-analytics.com": 0.8568,
				"www.googletagmanager.com": 0.8272,
				"fonts.gstatic.com":        0.50,
				"fonts.googleapis.com":     0.50,
			}
			for _, h := range extras {
				if hostListed(hosts, h) {
					continue
				}
				if rng.Float64() < use[h] {
					p := ProviderFor(provName)
					addHost(h, p.Name, p.ASN, netip.MustParsePrefix(p.Prefix), 0)
					hosts[len(hosts)-1].deepDiscovery = true
				}
			}
		}
		// Long-tail third parties on their own ASes: median ~4 extra
		// ASes so unique-AS-per-page lands near the paper's median 6.
		nTail := int(math.Exp(math.Log(2.6) + 0.95*rng.NormFloat64()))
		if nTail > 60 {
			nTail = 60
		}
		for i := 0; i < nTail; i++ {
			idx := rng.Intn(tailASSpace)
			as := g.tailAS(idx)
			addHost(fmt.Sprintf("t%d.thirdparty-%d.example", i, idx), fmt.Sprintf("Tail-AS-%d", idx), as, tailPrefix(idx), 0)
		}
	}

	// --- Distribute the request budget across hosts ---
	remaining := total - len(hosts) // every host gets ≥1 request
	if remaining < 0 {
		hosts = hosts[:maxInt(1, total)]
		remaining = 0
	}
	for i := range hosts {
		if i > 0 {
			hosts[i].reqs = 1
		}
	}
	// Root and shards absorb most requests (first-party content);
	// popular hosts draw requests proportional to their share weight.
	var weightSum float64
	for i := range hosts {
		weightSum += hosts[i].weight
	}
	for r := 0; r < remaining; r++ {
		x := rng.Float64()
		switch {
		case x < 0.50: // own hosts
			hosts[rng.Intn(1+nShards)].reqs++
		case x < 0.78 && weightSum > 0: // weighted popular hosts
			w := rng.Float64() * weightSum
			for i := range hosts {
				w -= hosts[i].weight
				if w <= 0 {
					hosts[i].reqs++
					break
				}
			}
		default:
			hosts[rng.Intn(len(hosts))].reqs++
		}
	}

	// --- Root certificate SANs (Figure 4 measured distribution) ---
	rootSANs := buildRootSANs(apex, siteHost, hosts[:1+nShards], nSAN, rng)

	// --- Emit entries ---
	page := &har.Page{
		URL:  "https://" + siteHost + "/",
		Host: siteHost,
		Rank: rank,
	}
	issuerTail := func() string {
		x := rng.Float64() * 100
		acc := 0.0
		for _, is := range Issuers {
			acc += is.Share
			if x < acc {
				return is.Name
			}
		}
		return Issuers[len(Issuers)-1].Name
	}
	issuerFor := func(provider string) string {
		// Providers provision most of their customers' certificates but
		// not all: customers bring their own CAs too (§3.3 notes the
		// ability is limited by management complexity and multi-provider
		// setups).
		if is, ok := issuerForProvider[provider]; ok && rng.Float64() < 0.5 {
			return is
		}
		return issuerTail()
	}

	// Waves model the dependency depth: root(0) → blocking(1) →
	// media/fonts(2) → progressively later resources. Depths are
	// exponentially distributed so a minority of deep chains sets the
	// page load time, as in real dependency graphs.
	const maxWave = 14
	type pending struct {
		host int
		wave int
	}
	// Each host has a discovery wave: the depth at which the page first
	// references it. Spreading discoveries across the whole depth keeps
	// fresh connection setups on the critical path at every level, as
	// real waterfalls show (Figure 2).
	discovery := make([]int, len(hosts))
	for hi := 1; hi < len(hosts); hi++ {
		if hosts[hi].deepDiscovery {
			discovery[hi] = 2 + rng.Intn(maxWave-4)
		} else {
			// Trackers and one-off third parties sit near the top of
			// the document.
			discovery[hi] = 1 + rng.Intn(3)
		}
	}
	var reqs []pending
	for hi := range hosts {
		for k := 0; k < hosts[hi].reqs; k++ {
			wave := 0
			if hi != 0 || k != 0 {
				wave = discovery[hi] + int(rng.ExpFloat64()*1.5)
				if wave < 1 {
					wave = 1
				}
				if wave > maxWave-1 {
					wave = maxWave - 1
				}
			}
			reqs = append(reqs, pending{host: hi, wave: wave})
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].wave < reqs[j].wave })

	waveEnd := make([]float64, maxWave)
	waveEntries := make([][]int, maxWave)
	// waveAnchors are entries that opened a fresh connection; children
	// preferentially depend on them, since new hosts are discovered by
	// the resources that reference them. This is what couples
	// connection setup time to the page's critical path.
	waveAnchors := make([][]int, maxWave)
	freshDone := map[int]bool{}

	// Mid-crawl CDN migration (ArchetypeMigration only): from migWave on,
	// the first-party cluster (root + shards) lives on a new network. A
	// host's first post-migration request re-resolves — a fresh NewDNS
	// entry whose answer set is disjoint from the pre-migration one — so
	// replay clients holding pooled connections to the old home discover
	// them stale. Shards that shared the root's server keep sharing the
	// new one; the cluster moves together, as a CDN switch moves it.
	var migWave int
	var migAddrs [][]netip.Addr
	var migASN uint32
	var migProv string
	migDone := map[int]bool{}
	if g.cfg.Archetype == ArchetypeMigration {
		migWave = 5 + rng.Intn(4)
		mi := rng.Intn(tailASSpace)
		migASN = g.tailAS(mi)
		migProv = fmt.Sprintf("Tail-AS-%d", mi)
		pfx := tailPrefix(mi)
		migAddrs = make([][]netip.Addr, len(hosts))
		for hi := 0; hi <= nShards && hi < len(hosts); hi++ {
			if hi > 0 && len(hosts[hi].addrs) > 0 && len(hosts[0].addrs) > 0 && hosts[hi].addrs[0] == hosts[0].addrs[0] {
				migAddrs[hi] = migAddrs[0]
				continue
			}
			set := make([]netip.Addr, 0, len(hosts[hi].addrs))
			for a := range hosts[hi].addrs {
				set = append(set, hostAddr(pfx, hash32(hosts[hi].name)+uint32(a)))
			}
			migAddrs[hi] = set
		}
	}

	for _, pr := range reqs {
		h := &hosts[pr.host]
		if g.cfg.Archetype == ArchetypeMigration && pr.host <= nShards && pr.wave >= migWave && !migDone[pr.host] {
			migDone[pr.host] = true
			h.addrs = migAddrs[pr.host]
			h.asn = migASN
			h.provider = migProv
			freshDone[pr.host] = false
		}
		e := har.Entry{
			Host:     h.name,
			Method:   "GET",
			Secure:   rng.Float64() < SecureShare,
			ServerIP: h.addrs[0],
			ServerASN: func() uint32 {
				return h.asn
			}(),
			Initiator: -1,
		}
		// Content type.
		ct := pickContentType(rng, pr.wave)
		e.MimeType = ct.Mime
		e.BodySize = int64(float64(ct.MeanBytes) * (0.3 + rng.ExpFloat64()))
		e.RenderBlocking = ct.RenderBlocking && pr.wave <= 1
		e.URL = fmt.Sprintf("https://%s/r/%d%s", h.name, len(page.Entries), extFor(ct.Mime))
		e.Protocol = pickProtocol(rng)
		e.Status = 200

		// Timing assembly.
		var tm har.Timings
		fresh := !freshDone[pr.host]
		if fresh {
			freshDone[pr.host] = true
			e.NewDNS = true
			e.DNSAnswer = h.addrs
			tm.DNS = g.net.DNSTime()
			if e.Secure {
				e.NewTLS = true
				tm.Connect = g.net.ConnectTime()
				sans := 2 + rng.Intn(5)
				if pr.host == 0 {
					sans = len(rootSANs)
					e.CertSANs = rootSANs
				} else {
					e.CertSANs = synthSANs(h.name, sans, rng)
				}
				records := 1
				if sans > 700 {
					records = 1 + sans/700
				}
				tm.SSL = g.net.TLSTime(sans, records)
				e.CertIssuer = issuerFor(h.provider)
			} else {
				tm.Connect = g.net.ConnectTime()
			}
			extraDNS, speculative := g.net.RaceEffects()
			page.ExtraDNS += extraDNS
			if speculative && e.Secure {
				page.ExtraTLS++
			}
		}
		tm.Send = 0.5
		tm.Wait = g.net.WaitTime()
		tm.Receive = g.net.TransferTime(e.BodySize)

		// Start time: after a sampled initiator in the previous wave.
		if pr.wave == 0 {
			e.StartedMs = 0
			tm.Blocked = 0
		} else {
			prevWave := pr.wave - 1
			for prevWave > 0 && len(waveEntries[prevWave]) == 0 {
				prevWave--
			}
			cands := waveEntries[prevWave]
			if len(waveAnchors[prevWave]) > 0 && rng.Float64() < 0.9 {
				cands = waveAnchors[prevWave]
			}
			init := 0
			if len(cands) > 0 {
				init = cands[rng.Intn(len(cands))]
			}
			e.Initiator = init
			parent := page.Entries[init]
			// Parse/dependency CPU time plus queueing behind other
			// requests already in flight on the same connection.
			tm.Blocked = 45 + rng.Float64()*60
			e.StartedMs = parent.EndMs() + rng.Float64()*40
		}
		e.Timings = tm
		idx := len(page.Entries)
		page.Entries = append(page.Entries, e)
		waveEntries[pr.wave] = append(waveEntries[pr.wave], idx)
		if fresh {
			waveAnchors[pr.wave] = append(waveAnchors[pr.wave], idx)
		}
		if end := e.EndMs(); end > waveEnd[pr.wave] {
			waveEnd[pr.wave] = end
		}
	}

	page.OnLoadMs = page.LastEntryEnd()
	dom := waveEnd[1]
	for _, e := range page.Entries {
		if e.RenderBlocking || e.Initiator == -1 {
			if v := e.EndMs(); v > dom {
				dom = v
			}
		}
	}
	page.DOMLoadMs = dom
	if page.DOMLoadMs == 0 || page.DOMLoadMs > page.OnLoadMs {
		page.DOMLoadMs = page.OnLoadMs
	}
	return page
}

// buildRootSANs assembles the root certificate's SAN list of the target
// size: the site's own names first, padded with unrelated names the
// operator accumulated (matching how real multi-tenant certs look).
func buildRootSANs(apex, siteHost string, own []hostInfo, n int, rng *rand.Rand) []string {
	if n == 0 {
		return nil
	}
	var sans []string
	sans = append(sans, siteHost)
	if n >= 2 {
		// Most real certificates pair the www host with a wildcard,
		// which is what leaves the majority of sharded subdomains
		// already covered (§4.3: 62% of sites need no changes).
		if rng.Float64() < 0.70 {
			sans = append(sans, "*."+apex)
		} else {
			sans = append(sans, apex)
		}
	}
	for _, h := range own[1:] {
		if len(sans) >= n {
			break
		}
		if sanWildcardCovers(sans, h.name) {
			continue
		}
		sans = append(sans, h.name)
	}
	for i := 0; len(sans) < n; i++ {
		sans = append(sans, fmt.Sprintf("tenant-%d.%s", rng.Intn(1_000_000), apex))
	}
	return sans[:n]
}

// sanWildcardCovers reports whether an existing wildcard entry already
// covers host.
func sanWildcardCovers(sans []string, host string) bool {
	for _, san := range sans {
		if len(san) > 2 && san[0] == '*' && san[1] == '.' {
			suffix := san[1:]
			if len(host) > len(suffix) && host[len(host)-len(suffix):] == suffix {
				label := host[:len(host)-len(suffix)]
				hasDot := false
				for i := 0; i < len(label); i++ {
					if label[i] == '.' {
						hasDot = true
					}
				}
				if label != "" && !hasDot {
					return true
				}
			}
		}
	}
	return false
}

func synthSANs(host string, n int, rng *rand.Rand) []string {
	sans := []string{host}
	for i := 1; i < n; i++ {
		sans = append(sans, fmt.Sprintf("alt%d.%s", i, host))
	}
	return sans
}

func pickContentType(rng *rand.Rand, wave int) ContentType {
	x := rng.Float64() * 100
	acc := 0.0
	for _, ct := range ContentTypes {
		acc += ct.Share
		if x < acc {
			return ct
		}
	}
	return ContentTypes[len(ContentTypes)-1]
}

func pickProtocol(rng *rand.Rand) string {
	x := rng.Float64() * 100
	acc := 0.0
	for _, p := range Protocols {
		acc += p.Share
		if x < acc {
			return p.Name
		}
	}
	return "unknown"
}

func extFor(mime string) string {
	switch mime {
	case "application/javascript", "text/javascript", "application/x-javascript":
		return ".js"
	case "text/css":
		return ".css"
	case "image/jpeg":
		return ".jpg"
	case "image/png":
		return ".png"
	case "image/gif":
		return ".gif"
	case "image/webp":
		return ".webp"
	case "font/woff2":
		return ".woff2"
	case "text/html":
		return ".html"
	case "application/json":
		return ".json"
	default:
		return ""
	}
}

func hostListed(hosts []hostInfo, name string) bool {
	for _, h := range hosts {
		if h.name == name {
			return true
		}
	}
	return false
}

func hash32(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RebuildASDB reconstructs an IP→ASN database from a page corpus that
// was loaded from disk (cmd/crawl output): provider prefixes come from
// the universe table, and any other AS observed in the corpus is
// registered with its generated organization name. This makes a
// deserialized corpus fully usable by the report layer.
func RebuildASDB(pages []*har.Page) *asn.DB {
	db := asn.NewDB()
	for _, p := range Providers {
		db.Add(netip.MustParsePrefix(p.Prefix), asn.ASN(p.ASN), p.Name)
	}
	seen := map[uint32]bool{}
	for _, page := range pages {
		for i := range page.Entries {
			e := &page.Entries[i]
			as := e.ServerASN
			if as == 0 || seen[as] {
				continue
			}
			seen[as] = true
			if _, ok := db.Lookup(e.ServerIP); ok {
				continue
			}
			if as >= TailASNBase {
				idx := int(as - TailASNBase)
				db.Add(tailPrefix(idx), asn.ASN(as), fmt.Sprintf("Tail-AS-%d", idx))
			} else {
				// Unknown AS: register the /16 around the observed IP.
				db.Add(netip.PrefixFrom(e.ServerIP, 16).Masked(), asn.ASN(as), fmt.Sprintf("AS-%d", as))
			}
		}
	}
	return db
}
