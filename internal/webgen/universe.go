package webgen

// This file encodes the published marginal distributions of the paper's
// dataset (§3.3, Tables 2–7, Table 9). The generator samples from these
// so that the synthetic corpus reproduces the paper's aggregate shape.

// Provider is a hosting/CDN organization with one or more ASNs.
type Provider struct {
	Name   string
	ASN    uint32
	Prefix string // IPv4 allocation the generator assigns hosts from
	// ReqShare is the provider's share of all subresource requests
	// (Table 2, %).
	ReqShare float64
	// SiteShare is the share of *websites* served by the provider
	// (Table 9, %; zero for providers not in that table).
	SiteShare float64
}

// Providers are the paper's top-10 request destinations (Table 2). The
// remaining ~36% of requests go to a long tail generated separately.
var Providers = []Provider{
	{Name: "Google", ASN: 15169, Prefix: "8.8.0.0/16", ReqShare: 22.10, SiteShare: 5.09},
	{Name: "Cloudflare", ASN: 13335, Prefix: "104.16.0.0/16", ReqShare: 13.75, SiteShare: 24.74},
	{Name: "Amazon-02", ASN: 16509, Prefix: "52.84.0.0/16", ReqShare: 8.40, SiteShare: 7.75},
	{Name: "Amazon-AES", ASN: 14618, Prefix: "54.144.0.0/16", ReqShare: 5.62, SiteShare: 0},
	{Name: "Fastly", ASN: 54113, Prefix: "151.101.0.0/16", ReqShare: 3.57, SiteShare: 1.2},
	{Name: "Akamai", ASN: 16625, Prefix: "23.32.0.0/16", ReqShare: 3.02, SiteShare: 0.9},
	{Name: "Facebook", ASN: 32934, Prefix: "157.240.0.0/16", ReqShare: 2.78, SiteShare: 0},
	{Name: "Akamai-Intl", ASN: 20940, Prefix: "2.16.0.0/16", ReqShare: 1.62, SiteShare: 0.4},
	{Name: "OVH", ASN: 16276, Prefix: "51.68.0.0/16", ReqShare: 1.52, SiteShare: 2.0},
	{Name: "Hetzner", ASN: 24940, Prefix: "88.198.0.0/16", ReqShare: 1.30, SiteShare: 2.5},
}

// TailASNBase is the first ASN used for long-tail networks; the dataset
// saw 13,316 distinct ASes.
const TailASNBase = 400000

// PopularHost is a popular third-party subresource hostname (Table 7).
type PopularHost struct {
	Host     string
	Provider string  // Provider.Name owning it
	Share    float64 // share of all requests, %
}

// PopularHosts are the Table 7 top-10 subresource hostnames; together
// they account for 12.5% of requests.
var PopularHosts = []PopularHost{
	{"fonts.gstatic.com", "Google", 2.23},
	{"www.google-analytics.com", "Google", 1.67},
	{"www.facebook.com", "Facebook", 1.58},
	{"www.google.com", "Google", 1.52},
	{"tpc.googlesyndication.com", "Google", 1.21},
	{"cm.g.doubleclick.net", "Google", 1.18},
	{"googleads.g.doubleclick.net", "Google", 1.15},
	{"pagead2.googlesyndication.com", "Google", 1.12},
	{"fonts.googleapis.com", "Google", 0.97},
	{"cdn.shopify.com", "Cloudflare", 0.87},
}

// SecondaryHosts are provider-bound third-party hostnames giving the
// remaining Table 2 providers their request share (e.g. Amazon-AES and
// Fastly host media and library content without hosting many base
// pages themselves).
var SecondaryHosts = []PopularHost{
	{"media.amazon-aes.example", "Amazon-AES", 5.62},
	{"cdn.fastly-pop.example", "Fastly", 3.57},
	{"img.akamaized.example", "Akamai", 3.02},
	{"eu-cdn.akamai-intl.example", "Akamai-Intl", 1.62},
	{"static.ovh-hosted.example", "OVH", 1.52},
	{"assets.hetzner-hosted.example", "Hetzner", 1.30},
}

// ProviderPopularHosts lists, per provider, hostnames commonly used by
// sites on that provider (Table 9's candidate SAN additions).
var ProviderPopularHosts = map[string][]string{
	"Cloudflare": {
		"cdnjs.cloudflare.com",
		"sni.cloudflaressl.com",
		"ajax.cloudflare.com",
		"cdn.jsdelivr.net",
	},
	"Amazon-02": {
		"d1.cloudfront.net",
		"script.hotjar.com",
		"assets.s3.amazonaws.com",
	},
	"Google": {
		"www.google-analytics.com",
		"www.googletagmanager.com",
		"fonts.gstatic.com",
		"fonts.googleapis.com",
	},
}

// ContentType is a weighted response content type (Table 5).
type ContentType struct {
	Mime  string
	Share float64 // % of requests
	// MeanBytes parameterizes body sizes.
	MeanBytes int64
	// RenderBlocking marks types on the critical path.
	RenderBlocking bool
}

// ContentTypes are the Table 5 top-12 plus an "other" bucket.
var ContentTypes = []ContentType{
	{"application/javascript", 14.26, 28_000, true},
	{"image/jpeg", 13.02, 45_000, false},
	{"image/png", 10.67, 18_000, false},
	{"text/html", 10.32, 22_000, true},
	{"image/gif", 8.97, 3_000, false},
	{"text/css", 7.79, 14_000, true},
	{"text/javascript", 6.76, 25_000, true},
	{"application/json", 3.53, 4_000, false},
	{"application/x-javascript", 3.36, 24_000, true},
	{"font/woff2", 2.68, 32_000, false},
	{"image/webp", 2.67, 26_000, false},
	{"text/plain", 2.52, 2_000, false},
	{"other/other", 13.45, 8_000, false},
}

// Protocol is a weighted application protocol (Table 3).
type Protocol struct {
	Name  string
	Share float64
}

// Protocols are the Table 3 request protocol mix.
var Protocols = []Protocol{
	{"h2", 73.64},
	{"http/1.1", 19.09},
	{"h3", 0.34},
	{"quic", 0.07},
	{"http/1.0", 0.03},
	{"unknown", 6.83},
}

// SecureShare is the fraction of requests over HTTPS (Table 3, bottom).
const SecureShare = 0.9853

// Issuer is a weighted certificate issuer (Table 4).
type Issuer struct {
	Name  string
	Share float64 // % of certificate validations
}

// Issuers are the Table 4 top-10 plus a tail bucket.
var Issuers = []Issuer{
	{"Google Trust Services CA 101", 25.86},
	{"Let's Encrypt (R3)", 9.58},
	{"Amazon", 9.15},
	{"Cloudflare Inc ECC CA-3", 7.61},
	{"DigiCert SHA2 High Assurance Server CA", 7.05},
	{"DigiCert SHA2 Secure Server CA", 6.95},
	{"Sectigo RSA DV Secure Server CA", 6.91},
	{"GoDaddy Secure Certificate Authority - G2", 3.11},
	{"DigiCert TLS RSA SHA256 2020 CA1", 2.85},
	{"GeoTrust RSA CA 2018", 1.59},
	{"Other Issuers", 28.34},
}

// providerByName indexes Providers.
var providerByName = func() map[string]*Provider {
	m := make(map[string]*Provider, len(Providers))
	for i := range Providers {
		m[Providers[i].Name] = &Providers[i]
	}
	return m
}()

// ProviderFor returns the provider with the given name, or nil.
func ProviderFor(name string) *Provider { return providerByName[name] }

// issuerForProvider maps hosting providers to the issuer of certificates
// they typically provision.
var issuerForProvider = map[string]string{
	"Google":      "Google Trust Services CA 101",
	"Cloudflare":  "Cloudflare Inc ECC CA-3",
	"Amazon-02":   "Amazon",
	"Amazon-AES":  "Amazon",
	"Fastly":      "Let's Encrypt (R3)",
	"Akamai":      "DigiCert SHA2 Secure Server CA",
	"Akamai-Intl": "DigiCert SHA2 Secure Server CA",
	"Facebook":    "DigiCert SHA2 High Assurance Server CA",
}
