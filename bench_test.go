// Package respectorigin's benchmark harness regenerates every table
// and figure of the paper's evaluation (run with `go test -bench=. .`)
// and carries the ablation benchmarks called out in DESIGN.md §6.
//
// Table/figure benchmarks report the headline quantity of their
// artifact via b.ReportMetric so a bench run doubles as a compact
// reproduction log; EXPERIMENTS.md records the paper-vs-measured
// comparison in full.
package respectorigin

import (
	"bytes"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"

	"respectorigin/internal/browser"
	"respectorigin/internal/cdn"
	"respectorigin/internal/certs"
	"respectorigin/internal/core"
	"respectorigin/internal/dns"
	"respectorigin/internal/doh"
	"respectorigin/internal/h1"
	"respectorigin/internal/h2"
	"respectorigin/internal/hpack"
	"respectorigin/internal/netsim"
	"respectorigin/internal/privacy"
	"respectorigin/internal/report"
	"respectorigin/internal/sched"
	"respectorigin/internal/webgen"
)

// benchCorpusSize keeps the corpus large enough for stable medians but
// small enough for iterating benchmarks.
const benchCorpusSize = 4000

var (
	corpusOnce sync.Once
	corpusVal  *report.Corpus
)

func benchCorpus(b *testing.B) *report.Corpus {
	b.Helper()
	corpusOnce.Do(func() {
		cfg := webgen.DefaultConfig()
		cfg.Sites = benchCorpusSize
		ds, err := webgen.Generate(cfg)
		if err != nil {
			panic(err)
		}
		corpusVal = report.NewCorpus(ds)
	})
	b.ResetTimer() // corpus generation is shared setup, not measured work
	return corpusVal
}

// --- Tables 1-9 ---

func BenchmarkTable1(b *testing.B) {
	c := benchCorpus(b)
	var rows []report.Table1Row
	for i := 0; i < b.N; i++ {
		rows, _ = c.Table1(5)
	}
	b.ReportMetric(rows[0].MedianReqs, "median-reqs-top-bucket")
}

func BenchmarkTable2(b *testing.B) {
	c := benchCorpus(b)
	var share float64
	for i := 0; i < b.N; i++ {
		top, _ := c.Table2(10)
		share = 0
		for _, e := range top {
			share += e.Share
		}
	}
	b.ReportMetric(share, "top10-AS-request-share-pct")
}

func BenchmarkTable3(b *testing.B) {
	c := benchCorpus(b)
	var secure float64
	for i := 0; i < b.N; i++ {
		_, secure, _ = c.Table3()
	}
	b.ReportMetric(secure, "secure-share-pct")
}

func BenchmarkTable4(b *testing.B) {
	c := benchCorpus(b)
	var topShare float64
	for i := 0; i < b.N; i++ {
		top, _ := c.Table4(10)
		topShare = top[0].Share
	}
	b.ReportMetric(topShare, "top-issuer-share-pct")
}

func BenchmarkTable5(b *testing.B) {
	c := benchCorpus(b)
	var topShare float64
	for i := 0; i < b.N; i++ {
		top, _ := c.Table5(12)
		topShare = top[0].Share
	}
	b.ReportMetric(topShare, "top-content-type-share-pct")
}

func BenchmarkTable6(b *testing.B) {
	c := benchCorpus(b)
	var rows []report.Table6Row
	for i := 0; i < b.N; i++ {
		rows, _ = c.Table6(3, 4)
	}
	b.ReportMetric(float64(len(rows)), "as-sections")
}

func BenchmarkTable7(b *testing.B) {
	c := benchCorpus(b)
	var share float64
	for i := 0; i < b.N; i++ {
		top, _ := c.Table7(10)
		share = 0
		for _, e := range top {
			share += e.Share
		}
	}
	b.ReportMetric(share, "top10-hostname-share-pct")
}

func BenchmarkTable8(b *testing.B) {
	c := benchCorpus(b)
	var commonest int
	for i := 0; i < b.N; i++ {
		rows, _ := c.Table8(10)
		commonest = rows[0].MeasuredSize
	}
	b.ReportMetric(float64(commonest), "commonest-SAN-size")
}

func BenchmarkTable9(b *testing.B) {
	c := benchCorpus(b)
	var topHostShare float64
	for i := 0; i < b.N; i++ {
		changes, _ := c.Table9(3, 5)
		if len(changes) > 0 && len(changes[0].TopHosts) > 0 {
			topHostShare = changes[0].TopHosts[0].Share
		}
	}
	b.ReportMetric(topHostShare, "top-provider-top-host-pct")
}

// --- Figures 1-9 ---

func BenchmarkFigure1(b *testing.B) {
	c := benchCorpus(b)
	var median float64
	for i := 0; i < b.N; i++ {
		hist, _, _ := c.Figure1()
		total, cum := 0, 0
		for _, v := range hist {
			total += v
		}
		for n := 1; n < 1000; n++ {
			cum += hist[n]
			if cum*2 >= total {
				median = float64(n)
				break
			}
		}
	}
	b.ReportMetric(median, "median-unique-ASes")
}

func BenchmarkFigure2(b *testing.B) {
	c := benchCorpus(b)
	var n int
	for i := 0; i < b.N; i++ {
		n = len(c.Figure2(0, 72))
	}
	b.ReportMetric(float64(n), "waterfall-bytes")
}

func BenchmarkFigure3(b *testing.B) {
	c := benchCorpus(b)
	h, _ := c.Headline()
	for i := 0; i < b.N; i++ {
		_, _ = c.Figure3()
	}
	b.ReportMetric(h.MedianIdealOrigin, "ideal-origin-median-conns")
	b.ReportMetric(h.TLSReductionPct, "tls-reduction-pct")
}

func BenchmarkFigure4(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		_, _, _ = c.Figure4()
	}
}

func BenchmarkFigure5(b *testing.B) {
	c := benchCorpus(b)
	var maxIdeal int
	for i := 0; i < b.N; i++ {
		pts, _ := c.Figure5()
		maxIdeal = pts[0].Ideal
		for _, p := range pts {
			if p.Ideal > maxIdeal {
				maxIdeal = p.Ideal
			}
		}
	}
	b.ReportMetric(float64(maxIdeal), "largest-ideal-SAN-count")
}

func benchDeployment(b *testing.B) *report.Deployment {
	b.Helper()
	return report.NewDeployment(600, 11)
}

func BenchmarkFigure6(b *testing.B) {
	var txt string
	for i := 0; i < b.N; i++ {
		d := benchDeployment(b)
		txt = d.Figure6()
	}
	b.ReportMetric(float64(len(txt)), "figure6-bytes")
}

func BenchmarkFigure7a(b *testing.B) {
	var expZero float64
	for i := 0; i < b.N; i++ {
		d := benchDeployment(b)
		_, exp, _ := d.Figure7(cdn.PhaseIP)
		expZero = exp.Frac(0)
	}
	b.ReportMetric(100*expZero, "experiment-zero-conn-pct")
}

func BenchmarkFigure7b(b *testing.B) {
	var expZero float64
	for i := 0; i < b.N; i++ {
		d := benchDeployment(b)
		_, exp, _ := d.Figure7(cdn.PhaseOrigin)
		expZero = exp.Frac(0)
	}
	b.ReportMetric(100*expZero, "experiment-zero-conn-pct")
}

func BenchmarkFigure8(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		d := benchDeployment(b)
		ctl, exp, _ := d.Figure8(14, 4, 10)
		ratio = exp.Mean(4, 10) / maxf(ctl.Mean(4, 10), 1)
	}
	b.ReportMetric(ratio, "deployment-exp-ctl-ratio")
}

func BenchmarkFigure9Model(b *testing.B) {
	c := benchCorpus(b)
	var d report.Figure9ModelData
	for i := 0; i < b.N; i++ {
		d, _ = c.Figure9Model(13335)
	}
	b.ReportMetric(100*(d.MedianMeasured-d.MedianOrigin)/d.MedianMeasured, "origin-plt-improvement-pct")
}

func BenchmarkFigure9Deployment(b *testing.B) {
	var impr float64
	for i := 0; i < b.N; i++ {
		d := benchDeployment(b)
		data, _ := d.Figure9Deployment(11)
		impr = data.ImprovementPct
	}
	b.ReportMetric(impr, "deployment-plt-improvement-pct")
}

// --- Passive §5.2 headline ---

func BenchmarkPassiveIPReduction(b *testing.B) {
	var red float64
	for i := 0; i < b.N; i++ {
		d := benchDeployment(b)
		pc, _ := d.PassiveIP(2)
		red = pc.ReductionPct()
	}
	b.ReportMetric(red, "tls-conn-reduction-pct")
}

// --- Ablation 1: HPACK Huffman on/off (DESIGN.md §6.1) ---

func benchHeaderList() []hpack.HeaderField {
	return []hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "www.site-123456.example"},
		{Name: ":path", Value: "/assets/js/application-3f2a1b.min.js"},
		{Name: "user-agent", Value: "Mozilla/5.0 (X11; Linux x86_64; rv:96.0) Gecko/20100101 Firefox/96.0"},
		{Name: "accept", Value: "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8"},
		{Name: "accept-language", Value: "en-US,en;q=0.5"},
		{Name: "accept-encoding", Value: "gzip, deflate, br"},
		{Name: "referer", Value: "https://www.site-123456.example/"},
		{Name: "cookie", Value: "session=1f4c2d8a9b3e5f7a; theme=dark; consent=granted"},
	}
}

func BenchmarkAblationHuffman(b *testing.B) {
	for _, huff := range []bool{true, false} {
		name := "off"
		if huff {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			fields := benchHeaderList()
			var blockLen int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				enc := hpack.NewEncoder()
				enc.SetHuffman(huff)
				blk := enc.AppendHeaderBlock(nil, fields)
				blockLen = len(blk)
			}
			b.ReportMetric(float64(blockLen), "first-block-bytes")
		})
	}
}

func BenchmarkHPACKDecode(b *testing.B) {
	enc := hpack.NewEncoder()
	blk := enc.AppendHeaderBlock(nil, benchHeaderList())
	dec := hpack.NewDecoder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dec.DecodeFull(blk); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation 2: origin-set validation strictness (DESIGN.md §6.2) ---

func BenchmarkAblationOriginValidation(b *testing.B) {
	envs := newLabEnv()
	for _, strict := range []bool{true, false} {
		name := "san-checked"
		if !strict {
			name = "trust-frame-only"
		}
		b.Run(name, func(b *testing.B) {
			var conns int
			for i := 0; i < b.N; i++ {
				br := browser.New(browser.PolicyFirefoxOrigin)
				if !strict {
					// Trusting the frame alone is modelled by a cert
					// that covers everything.
					envs.sans["www.lab.test"] = []string{"*.lab.test", "third.other.test", "www.lab.test"}
				} else {
					envs.sans["www.lab.test"] = []string{"www.lab.test", "static.lab.test"}
				}
				br.Request(envs, "www.lab.test")
				br.Request(envs, "static.lab.test")
				br.Request(envs, "third.other.test")
				conns = br.TotalNewConn
			}
			b.ReportMetric(float64(conns), "connections-per-page")
		})
	}
}

// --- Ablation 3: coalescing policy comparison (DESIGN.md §6.3) ---

func BenchmarkAblationPolicies(b *testing.B) {
	for _, pol := range []browser.Policy{browser.PolicyChromium, browser.PolicyFirefox, browser.PolicyFirefoxOrigin} {
		b.Run(pol.String(), func(b *testing.B) {
			env := newLabEnv()
			var conns, dnsq int
			for i := 0; i < b.N; i++ {
				br := browser.New(pol)
				for _, h := range []string{"www.lab.test", "static.lab.test", "img.lab.test", "third.other.test"} {
					br.Request(env, h)
				}
				conns, dnsq = br.TotalNewConn, br.TotalDNS
			}
			b.ReportMetric(float64(conns), "connections-per-page")
			b.ReportMetric(float64(dnsq), "dns-queries-per-page")
		})
	}
}

// --- Ablation 4: DNS answer rotation vs Chromium (DESIGN.md §6.4) ---

func BenchmarkAblationDNSRotation(b *testing.B) {
	// Three sharded hostnames served by one load-balanced edge pool
	// {A, B, C}. With stable full answers Chromium coalesces everything
	// (exact-IP match on A); with RFC 1794 single-answer rotation each
	// query lands on a different address and every shard opens its own
	// connection — the §2.3 breakage.
	newRotEnv := func(rotate bool) *labEnvT {
		auth := dns.NewAuthority()
		pool := []netip.Addr{mustAddr("203.0.113.1"), mustAddr("203.0.113.2"), mustAddr("203.0.113.3")}
		siteCert := []string{"www.lab.test", "static.lab.test", "img.lab.test"}
		for _, h := range siteCert {
			auth.AddA(h, pool...)
		}
		auth.Rotation = rotate
		if rotate {
			auth.AnswerLimit = 1
		}
		sans := map[string][]string{}
		for _, h := range siteCert {
			sans[h] = siteCert
		}
		return &labEnvT{auth: auth, res: dns.NewResolver(auth), sans: sans}
	}
	for _, rotate := range []bool{false, true} {
		name := "stable-answers"
		if rotate {
			name = "rotating-answers"
		}
		b.Run(name, func(b *testing.B) {
			var conns int
			for i := 0; i < b.N; i++ {
				env := newRotEnv(rotate)
				br := browser.New(browser.PolicyChromium)
				for _, h := range []string{"www.lab.test", "static.lab.test", "img.lab.test"} {
					br.Request(env, h)
				}
				conns = br.TotalNewConn
			}
			b.ReportMetric(float64(conns), "chromium-connections")
		})
	}
}

// --- Ablation 5: certificate SAN size vs handshake cost (DESIGN.md §6.5) ---

func BenchmarkAblationSANSize(b *testing.B) {
	net := netsim.New(netsim.DefaultParams(), 1)
	ca, err := certs.NewCA("Bench CA")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{2, 10, 100, 500} {
		b.Run(fmt.Sprintf("sans-%d", n), func(b *testing.B) {
			names := make([]string, n)
			for i := range names {
				names[i] = fmt.Sprintf("alt-%d.huge-cert.example", i)
			}
			var wire, records int
			for i := 0; i < b.N; i++ {
				leaf, err := ca.Issue(names...)
				if err != nil {
					b.Fatal(err)
				}
				wire = leaf.ChainWireSize()
				records = leaf.TLSRecords()
			}
			b.ReportMetric(float64(wire), "chain-bytes")
			b.ReportMetric(float64(records), "tls-records")
			b.ReportMetric(net.TLSTime(n, records), "handshake-ms")
		})
	}
}

// --- Protocol micro/macro benchmarks ---

func BenchmarkFramerDataRoundTrip(b *testing.B) {
	payload := bytes.Repeat([]byte{'x'}, 8192)
	buf := &bytes.Buffer{}
	w := h2.NewFramer(buf, nil)
	r := h2.NewFramer(nil, buf)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.WriteData(1, false, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadFrame(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkH2RoundTrip(b *testing.B) {
	srv := &h2.Server{Handler: h2.HandlerFunc(func(w *h2.ResponseWriter, r *h2.Request) {
		w.Write([]byte("hello world"))
	})}
	cn, sn := net.Pipe()
	go srv.ServeConn(sn)
	cc, err := h2.NewClientConn(cn, h2.ClientConnOptions{Origin: "bench.example"})
	if err != nil {
		b.Fatal(err)
	}
	defer cc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cc.Get("bench.example", "/"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct(b *testing.B) {
	c := benchCorpus(b)
	pages := c.DS.Pages
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.Reconstruct(pages[i%len(pages)], core.ModeOrigin, 0)
	}
}

func BenchmarkGenerateCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := webgen.DefaultConfig()
		cfg.Sites = 500
		cfg.Seed = int64(i + 1)
		if _, err := webgen.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSResolve(b *testing.B) {
	auth := dns.NewAuthority()
	auth.AddA("bench.example", mustAddr("192.0.2.1"), mustAddr("192.0.2.2"))
	r := dns.NewResolver(auth)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.LookupA("bench.example"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- helpers ---

type labEnvT struct {
	auth    *dns.Authority
	res     *dns.Resolver
	sans    map[string][]string
	origins map[string][]string
}

func (l *labEnvT) Lookup(host string) ([]netip.Addr, error) { return l.res.LookupA(host) }
func (l *labEnvT) CertSANs(host string, ip netip.Addr) []string {
	if s, ok := l.sans[host]; ok {
		return s
	}
	return []string{host}
}
func (l *labEnvT) OriginSet(host string, ip netip.Addr) []string { return l.origins[host] }
func (l *labEnvT) Reachable(host string, ip netip.Addr) bool     { return true }

func newLabEnv() *labEnvT {
	auth := dns.NewAuthority()
	auth.AddA("www.lab.test", mustAddr("203.0.113.1"), mustAddr("203.0.113.2"))
	auth.AddA("static.lab.test", mustAddr("203.0.113.2"), mustAddr("203.0.113.3"))
	auth.AddA("img.lab.test", mustAddr("203.0.113.1"), mustAddr("203.0.113.3"))
	auth.AddA("third.other.test", mustAddr("198.51.100.9"))
	siteCert := []string{"www.lab.test", "static.lab.test", "img.lab.test", "third.other.test"}
	return &labEnvT{
		auth: auth,
		res:  dns.NewResolver(auth),
		sans: map[string][]string{
			"www.lab.test":    siteCert,
			"static.lab.test": siteCert,
			"img.lab.test":    siteCert,
		},
		origins: map[string][]string{
			"www.lab.test": {"static.lab.test", "img.lab.test", "third.other.test"},
		},
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// --- Extension benchmarks: privacy (§6.2), scheduling (§6.1), DoH ---

func BenchmarkPrivacyScenarios(b *testing.B) {
	c := benchCorpus(b)
	var rows []privacy.CorpusExposure
	for i := 0; i < b.N; i++ {
		rows, _ = c.PrivacyReport()
	}
	b.ReportMetric(rows[0].MedianLeakedHosts, "baseline-leaked-hosts")
	b.ReportMetric(rows[1].MedianLeakedHosts, "coalesced-leaked-hosts")
}

func BenchmarkAblationScheduling(b *testing.B) {
	c := benchCorpus(b)
	var cmp sched.Comparison
	for i := 0; i < b.N; i++ {
		cmp, _ = c.SchedulingReport(6)
	}
	b.ReportMetric(float64(cmp.ParallelInversions), "parallel-inversions")
	b.ReportMetric(float64(cmp.CoalescedInversions), "coalesced-inversions")
	b.ReportMetric(cmp.ParallelCriticalMs-cmp.CoalescedCriticalMs, "critical-ms-saved")
}

func BenchmarkDoHResolve(b *testing.B) {
	auth := dns.NewAuthority()
	auth.AddA("bench.example", mustAddr("192.0.2.1"))
	handler := &doh.Handler{Authority: auth}
	srv := &h2.Server{Handler: handler}
	cn, sn := net.Pipe()
	go srv.ServeConn(sn)
	cc, err := h2.NewClientConn(cn, h2.ClientConnOptions{Origin: "doh.example"})
	if err != nil {
		b.Fatal(err)
	}
	defer cc.Close()
	client := doh.NewClient(cc, "doh.example")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.LookupA("bench.example"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPriorityTreeAllocate(b *testing.B) {
	tr := sched.NewTree()
	for i := 0; i < 50; i++ {
		tr.Add(uint32(2*i+1), uint32(2*(i/3)+1)&^1, i%256+1, false)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Allocate(1e6)
	}
}

// --- Ablation 6: HTTP/1.1 serial vs HTTP/2 multiplexed (§2 background) ---

func BenchmarkAblationH1VsH2(b *testing.B) {
	const requests = 20
	payload := bytes.Repeat([]byte{'r'}, 4096)

	b.Run("h1-serial", func(b *testing.B) {
		srv := &h1.Server{Handler: h1.HandlerFunc(func(w *h1.ResponseWriter, r *h1.Request) {
			w.Write(payload)
		})}
		cn, sn := net.Pipe()
		go srv.ServeConn(sn)
		client := h1.NewClient(cn)
		defer client.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < requests; r++ {
				if _, err := client.Get("bench.example", "/r"); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(requests), "requests-serialized")
	})

	b.Run("h2-multiplexed", func(b *testing.B) {
		srv := &h2.Server{Handler: h2.HandlerFunc(func(w *h2.ResponseWriter, r *h2.Request) {
			w.Write(payload)
		})}
		cn, sn := net.Pipe()
		go srv.ServeConn(sn)
		cc, err := h2.NewClientConn(cn, h2.ClientConnOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer cc.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make(chan error, requests)
			for r := 0; r < requests; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := cc.Get("bench.example", "/r"); err != nil {
						errs <- err
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(requests), "requests-multiplexed")
	})
}

func BenchmarkPolicyCrossValidation(b *testing.B) {
	c := benchCorpus(b)
	var stats []report.PolicyStats
	for i := 0; i < b.N; i++ {
		stats, _ = c.PolicyComparison()
	}
	b.ReportMetric(stats[0].MedianConnections, "chromium-median-conns")
	b.ReportMetric(stats[1].MedianConnections, "firefox-median-conns")
	b.ReportMetric(stats[2].MedianConnections, "origin-median-conns")
}

// --- Parallel engine benchmarks ---

// BenchmarkGenerateParallel measures sharded corpus generation at
// several worker counts; the workers-1 sub-benchmark is the sequential
// baseline, so speedup = time(workers-1) / time(workers-N).
func BenchmarkGenerateParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := webgen.DefaultConfig()
				cfg.Sites = 2000
				cfg.Workers = workers
				ds, err := webgen.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(ds.Pages) == 0 {
					b.Fatal("empty corpus")
				}
			}
		})
	}
}

// BenchmarkTablesParallel measures the full per-page analysis pipeline
// (corpus construction plus the heaviest report passes) at several
// worker counts over a pre-generated dataset.
func BenchmarkTablesParallel(b *testing.B) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = benchCorpusSize
	ds, err := webgen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := report.NewCorpusWorkers(ds, workers)
				if _, s := c.Table1(5); s == "" {
					b.Fatal("empty table 1")
				}
				c.Table6(3, 4)
				c.Table9(3, 5)
				c.Figure9Model(13335)
			}
		})
	}
}
