// Private-resolver demonstrates the §6.2 privacy story end to end with
// real protocol machinery:
//
//  1. a DNS-over-HTTPS resolver (RFC 8484) runs on this repository's
//     own HTTP/2 stack, so lookups leave no cleartext queries;
//
//  2. an ORIGIN-enabled web server lets the client coalesce the
//     third-party fetch, so the *second* lookup and handshake never
//     happen at all;
//
//  3. the privacy analyzer compares the cleartext footprint of four
//     client configurations over a synthetic corpus.
//
//     go run ./examples/private-resolver
package main

import (
	"crypto/tls"
	"fmt"
	"log"
	"net"
	"net/netip"

	"respectorigin/internal/certs"
	"respectorigin/internal/dns"
	"respectorigin/internal/doh"
	"respectorigin/internal/h2"
	"respectorigin/internal/privacy"
	"respectorigin/internal/webgen"
)

func main() {
	// --- 1. A DoH resolver over our own HTTP/2 ---
	auth := dns.NewAuthority()
	auth.AddA("www.shop.test", netip.MustParseAddr("203.0.113.10"))
	auth.AddA("cdnjs.shared.test", netip.MustParseAddr("203.0.113.99"))

	ca, err := certs.NewCA("Private Resolver CA")
	if err != nil {
		log.Fatal(err)
	}
	dohLeaf, err := ca.Issue("doh.resolver.test")
	if err != nil {
		log.Fatal(err)
	}
	dohSrv := &h2.Server{Handler: &doh.Handler{Authority: auth}}
	dohClientEnd, dohServerEnd := net.Pipe()
	go dohSrv.ServeConn(tls.Server(dohServerEnd, &tls.Config{
		Certificates: []tls.Certificate{dohLeaf.TLSCertificate()},
		NextProtos:   []string{"h2"},
	}))
	dohConn, err := h2.NewClientConn(tls.Client(dohClientEnd, &tls.Config{
		RootCAs: ca.Pool(), ServerName: "doh.resolver.test", NextProtos: []string{"h2"},
	}), h2.ClientConnOptions{Origin: "doh.resolver.test"})
	if err != nil {
		log.Fatal(err)
	}
	defer dohConn.Close()
	resolver := doh.NewClient(dohConn, "doh.resolver.test")

	addrs, err := resolver.LookupA("www.shop.test")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DoH lookup www.shop.test -> %v  (no cleartext DNS on path)\n", addrs)

	// --- 2. ORIGIN coalescing removes the second lookup entirely ---
	webLeaf, err := ca.Issue("www.shop.test", "cdnjs.shared.test")
	if err != nil {
		log.Fatal(err)
	}
	webSrv := &h2.Server{
		Handler: h2.HandlerFunc(func(w *h2.ResponseWriter, r *h2.Request) {
			w.Write([]byte("content for " + r.Authority))
		}),
		OriginSet: []string{"cdnjs.shared.test"},
	}
	webClientEnd, webServerEnd := net.Pipe()
	go webSrv.ServeConn(tls.Server(webServerEnd, &tls.Config{
		Certificates: []tls.Certificate{webLeaf.TLSCertificate()},
		NextProtos:   []string{"h2"},
	}))
	web, err := h2.NewClientConn(tls.Client(webClientEnd, &tls.Config{
		RootCAs: ca.Pool(), ServerName: "www.shop.test", NextProtos: []string{"h2"},
	}), h2.ClientConnOptions{Origin: "www.shop.test"})
	if err != nil {
		log.Fatal(err)
	}
	defer web.Close()

	if _, err := web.Get("www.shop.test", "/"); err != nil {
		log.Fatal(err)
	}
	if web.CanRequest("cdnjs.shared.test") {
		if _, err := web.Get("cdnjs.shared.test", "/lib.js"); err != nil {
			log.Fatal(err)
		}
		fmt.Println("third-party fetch coalesced: zero additional DNS lookups or handshakes")
	}
	fmt.Printf("DoH queries issued this session: %d (only the first host)\n\n", resolver.Queries())

	// --- 3. Corpus-level comparison ---
	cfg := webgen.DefaultConfig()
	cfg.Sites = 1500
	ds, err := webgen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rows := privacy.AnalyzeCorpus(ds.Pages, privacy.StandardScenarios())
	fmt.Println(privacy.Report(rows))
}
