// CDN-deployment runs a miniature version of the paper's §5 production
// experiment end to end:
//
//  1. a CDN hosting a popular third-party domain selects a sample of
//     customer zones and reissues their certificates (experiment certs
//     gain the third party; control certs gain a byte-equalized unused
//     name, Figure 6);
//
//  2. the IP-coalescing phase aligns DNS on a single address and the
//     passive pipeline measures the §5.2 connection reduction;
//
//  3. the ORIGIN phase reverts DNS, turns on ORIGIN frames, and the
//     active measurement reproduces Figure 7b;
//
//  4. finally a real HTTP/2+TLS exchange demonstrates the deployed
//     coalescing path byte-for-byte.
//
//     go run ./examples/cdn-deployment
package main

import (
	"crypto/tls"
	"fmt"
	"log"
	"net"

	"respectorigin/internal/cdn"
	"respectorigin/internal/certs"
	"respectorigin/internal/h2"
	"respectorigin/internal/report"
)

func main() {
	d := report.NewDeployment(1500, 42)
	fmt.Println(d.Figure6())

	_, txt := d.PassiveIP(4)
	fmt.Println(txt)

	_, _, f7b := d.Figure7(cdn.PhaseOrigin)
	fmt.Println(f7b)

	// The same thing on the wire: one experiment zone served by the
	// ORIGIN-enabled termination process over real TLS.
	fmt.Println("--- wire-level check (real HTTP/2 over TLS) ---")
	var zone *cdn.Zone
	for _, z := range d.Exp.SampleZones {
		if z.Treatment == cdn.TreatmentExperiment {
			zone = z
			break
		}
	}
	ca, err := certs.NewCA("Deployment CA")
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := ca.Issue(zone.SANs...) // the reissued cert, incl. third party
	if err != nil {
		log.Fatal(err)
	}
	srv := &h2.Server{
		Handler: h2.HandlerFunc(func(w *h2.ResponseWriter, r *h2.Request) {
			w.Write([]byte("ok: " + r.Authority))
		}),
		OriginSet: []string{d.CDN.ThirdParty},
	}
	clientEnd, serverEnd := net.Pipe()
	go srv.ServeConn(tls.Server(serverEnd, &tls.Config{
		Certificates: []tls.Certificate{leaf.TLSCertificate()},
		NextProtos:   []string{"h2"},
	}))
	cc, err := h2.NewClientConn(tls.Client(clientEnd, &tls.Config{
		RootCAs:    ca.Pool(),
		ServerName: zone.Host,
		NextProtos: []string{"h2"},
	}), h2.ClientConnOptions{Origin: zone.Host})
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()

	if _, err := cc.Get(zone.Host, "/"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zone %s loaded; origin set now %v\n", zone.Host, cc.OriginSet().All())
	resp, err := cc.Get(d.CDN.ThirdParty, "/libs/jquery.min.js")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coalesced fetch of %s -> %d %q (stream %d, same TLS connection)\n",
		d.CDN.ThirdParty, resp.Status, resp.Body, resp.StreamID)
}
