// Fault injection: how much real-world degradation does connection
// coalescing survive?
//
// The paper's measurements (§3, §5) are best-case: lab networks, a
// healthy CDN, no packet loss. This example degrades the deployment
// experiment with a seeded fault plan — DNS SERVFAILs, TCP resets
// mid-stream, TLS handshake failures, telemetry restarts, packet loss
// — and re-reads the headline numbers. Two things fall out:
//
//  1. the coalescing *signal* (the experiment/control ratio of new
//     third-party TLS connections, Figure 8) is robust: resets kill
//     individual carrier connections but hit both groups alike;
//
//  2. the *accounting* must be fault-aware: a telemetry restart makes
//     reused connections reappear under fresh IDs, and the §5.2
//     counting rules have to exclude those or the reduction vanishes.
//
// Run with:
//
//	go run ./examples/fault-injection
package main

import (
	"fmt"
	"log"
	"net/netip"

	"respectorigin/internal/browser"
	"respectorigin/internal/cdn"
	"respectorigin/internal/faults"
	"respectorigin/internal/report"
)

func main() {
	const (
		sample = 800
		seed   = 42
		days   = 12
	)

	// 1. One browser request under a hostile environment: the faults.Env
	//    wrapper injects failures at each boundary (DNS, TLS, reuse) and
	//    the browser's bounded retry-with-backoff rides them out.
	plan, err := faults.ParsePlan("dnsfail=0.4,tlsfail=0.3")
	if err != nil {
		log.Fatal(err)
	}
	c := cdn.New(cdn.Config{SampleRate: 1, Seed: seed})
	z := c.AddZone("www.news.example", cdn.SLATierFree, netip.AddrFrom4([4]byte{104, 18, 0, 9}))
	z.Treatment = cdn.TreatmentExperiment
	c.ReissueCertificates()

	env := &faults.Env{Inner: c, Inj: faults.NewInjector(plan, seed)}
	b := browser.New(browser.PolicyFirefoxOrigin)
	b.MaxRetries = 3
	b.RetryBackoffMs = 250
	out := b.Request(env, z.Host)
	fmt.Printf("one request under %v:\n", plan)
	fmt.Printf("  err=%v retries=%d modelled backoff=%.0f ms\n", out.Err, out.Retries, out.BackoffMs)
	fmt.Printf("  browser failure accounting: %v\n\n", b.FailureCounts())

	// 2. The deployment experiment under increasing degradation. The
	//    same seed drives every run, so the only difference between the
	//    rows is the plan itself.
	specs := []string{"none", "reset=0.02,loss=1", "reset=0.10,dnsfail=0.02,loss=5"}
	fmt.Println("Figure 8 deployment-window ratio under degradation:")
	for _, spec := range specs {
		p, err := faults.ParsePlan(spec)
		if err != nil {
			log.Fatal(err)
		}
		d := report.NewDeploymentWithFaults(sample, seed, p, 1)
		_, _, txt := d.Figure8(days, days/4, days*3/4)
		// Keep only the headline ratio line.
		fmt.Printf("  plan %-32s %s", spec, lastLine(txt))
	}
	fmt.Println()

	// 3. Per-kind injector accounting for the harshest plan.
	p, _ := faults.ParsePlan(specs[len(specs)-1])
	d := report.NewDeploymentWithFaults(sample, seed, p, 1)
	d.Figure8(days, days/4, days*3/4)
	fmt.Print(d.FaultReport())
}

func lastLine(s string) string {
	lines := splitLines(s)
	if len(lines) == 0 {
		return "\n"
	}
	return lines[len(lines)-1] + "\n"
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
