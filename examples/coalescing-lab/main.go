// Coalescing-lab compares the three browser policies from the paper's
// §2.3 on identical page loads: Chromium's exact-IP matching, Firefox's
// transitive IP matching, and Firefox with ORIGIN frame support.
//
// The lab builds a small CDN-hosted "website" whose subresources are
// sharded across hostnames (some sharing address sets, some on disjoint
// addresses), then loads the page under each policy and prints the DNS
// queries, new connections, and coalescing decisions.
//
//	go run ./examples/coalescing-lab
package main

import (
	"fmt"
	"net/netip"

	"respectorigin/internal/browser"
	"respectorigin/internal/dns"
)

// labEnv implements browser.Environment over an in-process DNS
// authority with load-balanced (rotating) answers.
type labEnv struct {
	resolver *dns.Resolver
	sans     map[string][]string
	origins  map[string][]string
	serves   map[string]map[netip.Addr]bool
}

func (l *labEnv) Lookup(host string) ([]netip.Addr, error) {
	res, err := l.resolver.Lookup(host, dns.TypeA)
	return res.Addrs, err
}

// LookupTTL exposes the unified surface's TTL so cache-carrying
// browsers (browser.WithCache) can honor the authority's budgets.
func (l *labEnv) LookupTTL(host string) ([]netip.Addr, uint32, error) {
	res, err := l.resolver.Lookup(host, dns.TypeA)
	return res.Addrs, res.TTL, err
}
func (l *labEnv) CertSANs(host string, ip netip.Addr) []string {
	return l.sans[host]
}
func (l *labEnv) OriginSet(host string, ip netip.Addr) []string { return l.origins[host] }
func (l *labEnv) Reachable(host string, ip netip.Addr) bool {
	m, ok := l.serves[host]
	return ok && m[ip]
}

func main() {
	ipA := netip.MustParseAddr("203.0.113.1")
	ipB := netip.MustParseAddr("203.0.113.2")
	ipC := netip.MustParseAddr("203.0.113.3")
	ipX := netip.MustParseAddr("198.51.100.9") // third party, disjoint addresses

	auth := dns.NewAuthority()
	auth.Rotation = true // RFC 1794 load balancing, the IP-coalescing killer
	auth.AddA("www.shop.test", ipA, ipB)
	auth.AddA("static.shop.test", ipB, ipC)
	auth.AddA("img.shop.test", ipA, ipC)
	auth.AddA("cdnjs.provider.test", ipX)

	siteCert := []string{"www.shop.test", "static.shop.test", "img.shop.test", "cdnjs.provider.test"}
	env := &labEnv{
		resolver: dns.NewResolver(auth),
		sans: map[string][]string{
			"www.shop.test":       siteCert,
			"static.shop.test":    siteCert,
			"img.shop.test":       siteCert,
			"cdnjs.provider.test": {"cdnjs.provider.test"},
		},
		origins: map[string][]string{
			// The CDN's ORIGIN frame: the third party rides this conn.
			"www.shop.test": {"static.shop.test", "img.shop.test", "cdnjs.provider.test"},
		},
		serves: map[string]map[netip.Addr]bool{
			"www.shop.test":       {ipA: true, ipB: true, ipC: true},
			"static.shop.test":    {ipA: true, ipB: true, ipC: true},
			"img.shop.test":       {ipA: true, ipB: true, ipC: true},
			"cdnjs.provider.test": {ipA: true, ipB: true, ipC: true, ipX: true},
		},
	}

	pageHosts := []string{"www.shop.test", "static.shop.test", "img.shop.test", "cdnjs.provider.test"}
	policies := []struct {
		name string
		b    *browser.Browser
	}{
		{"Chromium (exact IP)", browser.New(browser.PolicyChromium)},
		{"Firefox (transitive IP)", browser.New(browser.PolicyFirefox)},
		{"Firefox + ORIGIN", browser.New(browser.PolicyFirefoxOrigin)},
	}

	for _, p := range policies {
		env.resolver.ResetQueries()
		fmt.Printf("=== %s ===\n", p.name)
		for _, host := range pageHosts {
			out := p.b.Request(env, host)
			verdict := "NEW CONNECTION"
			if out.Reused {
				verdict = fmt.Sprintf("coalesced onto %s", out.ConnHost)
				if out.ViaOrigin {
					verdict += " (via ORIGIN frame)"
				}
			}
			fmt.Printf("  %-22s -> %s (dns queries: %d)\n", host, verdict, out.DNSQueries)
		}
		fmt.Printf("  totals: %d connections, %d DNS queries, %d reused\n\n",
			p.b.TotalNewConn, p.b.TotalDNS, p.b.TotalReused)
	}

	fmt.Println("Chromium keeps only the connected address, so rotated DNS answers")
	fmt.Println("defeat it; Firefox's cached address sets recover the shards; only")
	fmt.Println("the ORIGIN frame reaches the third party on its disjoint addresses.")
}
