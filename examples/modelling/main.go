// Modelling runs the paper's §4 best-case coalescing model on a
// synthetic corpus: it prints a Figure-2-style waterfall reconstruction
// for one page, then the corpus-level predictions (Figure 3, Figure 4,
// Table 9 and the §7 headline numbers).
//
//	go run ./examples/modelling -sites 4000
package main

import (
	"flag"
	"fmt"
	"log"

	"respectorigin/internal/report"
	"respectorigin/internal/webgen"
)

func main() {
	sites := flag.Int("sites", 4000, "corpus size")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	cfg := webgen.DefaultConfig()
	cfg.Sites = *sites
	cfg.Seed = *seed
	ds, err := webgen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d successful page loads (%d failures)\n\n", len(ds.Pages), ds.Failures)

	c := report.NewCorpus(ds)

	// Pick a small page for a readable waterfall.
	pageIdx := 0
	for i, p := range ds.Pages {
		if n := len(p.Entries); n >= 6 && n <= 10 {
			pageIdx = i
			break
		}
	}
	fmt.Println(c.Figure2(pageIdx, 72))

	_, f3 := c.Figure3()
	fmt.Println(f3)
	_, _, f4 := c.Figure4()
	fmt.Println(f4)
	_, t9 := c.Table9(3, 5)
	fmt.Println(t9)
	_, h := c.Headline()
	fmt.Println(h)
}
