// Quickstart: serve two hostnames on one HTTP/2 connection with an
// RFC 8336 ORIGIN frame, entirely in memory.
//
// The server's certificate (a real X.509 chain) covers both the site
// and the shared third-party domain; the ORIGIN frame tells the client
// the third party is reachable here, and the client coalesces its
// second request onto the existing connection — no second DNS query,
// no second TLS handshake.
//
//	go run ./examples/quickstart
package main

import (
	"crypto/tls"
	"fmt"
	"log"
	"net"

	"respectorigin/internal/certs"
	"respectorigin/internal/h2"
	"respectorigin/internal/hpack"
)

const (
	site       = "www.example.test"
	thirdParty = "cdnjs.shared.test"
)

func main() {
	// 1. A private CA issues one certificate covering both names —
	//    the paper's least-effort SAN change (§4.3).
	ca, err := certs.NewCA("Quickstart CA")
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := ca.Issue(site, thirdParty)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certificate SANs: %v (%d bytes DER)\n\n", leaf.SANs(), leaf.WireSize())

	// 2. The server advertises the third party in its ORIGIN frame.
	srv := &h2.Server{
		Handler: h2.HandlerFunc(func(w *h2.ResponseWriter, r *h2.Request) {
			w.WriteHeader(200, hpack.HeaderField{Name: "content-type", Value: "text/plain"})
			fmt.Fprintf(w, "served %s%s", r.Authority, r.Path)
		}),
		OriginSet: []string{thirdParty},
	}

	// 3. Wire them together over TLS on an in-memory connection.
	clientEnd, serverEnd := net.Pipe()
	go srv.ServeConn(tls.Server(serverEnd, &tls.Config{
		Certificates: []tls.Certificate{leaf.TLSCertificate()},
		NextProtos:   []string{"h2"},
	}))
	cc, err := h2.NewClientConn(tls.Client(clientEnd, &tls.Config{
		RootCAs:    ca.Pool(),
		ServerName: site,
		NextProtos: []string{"h2"},
	}), h2.ClientConnOptions{
		Origin:   site,
		OnOrigin: func(origins []string) { fmt.Printf("<- ORIGIN frame: %v\n", origins) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()

	// 4. Fetch the site...
	resp, err := cc.Get(site, "/index.html")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET https://%s/index.html -> %d %q\n", site, resp.Status, resp.Body)

	// 5. ...and coalesce the third-party fetch onto the same connection.
	fmt.Printf("\nCanRequest(%s) = %v  (origin set + certificate SAN check)\n",
		thirdParty, cc.CanRequest(thirdParty))
	resp, err = cc.Get(thirdParty, "/lib.js")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET https://%s/lib.js -> %d %q  [same connection, stream %d]\n",
		thirdParty, resp.Status, resp.Body, resp.StreamID)

	fmt.Printf("\norigin set: %v\n", cc.OriginSet().All())
	fmt.Println("\nOne connection, one DNS resolution, one TLS handshake — two origins.")
}
