module respectorigin

go 1.22
