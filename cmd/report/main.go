// Command report regenerates the paper's tables and figures from a
// synthetic corpus.
//
// Usage:
//
//	report -sites 20000                        # everything
//	report -sites 20000 -table 2               # one table
//	report -sites 20000 -figure 3              # one figure
//	report -in dataset.col                     # crawl output, either encoding
//	report -manifest s0.manifest.json,s1.manifest.json   # sharded crawl
//	report -in dataset.col -reencode           # re-emit as NDJSON and exit
//	report -matrix -sites 150                  # scenario matrix table and exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"

	"respectorigin/internal/asn"
	"respectorigin/internal/cache"
	"respectorigin/internal/cliflags"
	"respectorigin/internal/core"
	"respectorigin/internal/corpus"
	"respectorigin/internal/har"
	"respectorigin/internal/netsim"
	"respectorigin/internal/obs"
	"respectorigin/internal/report"
	"respectorigin/internal/scenario"
	"respectorigin/internal/webgen"
)

func main() {
	sites := cliflags.Sites(20000)
	seed := cliflags.Seed(1)
	inFile := flag.String("in", "", "load a corpus file (cmd/crawl output, NDJSON or columnar) instead of generating")
	manifests := flag.String("manifest", "", "comma-separated shard manifests of a multi-process crawl; shards merge in rank order")
	reencode := flag.Bool("reencode", false, "with -in or -manifest: re-emit the corpus as NDJSON on stdout and exit (the cross-format gate)")
	harFile := flag.String("har", "", "load a standard HAR 1.2 archive (WebPageTest/DevTools) instead of generating")
	asnFile := flag.String("asn", "", "IP-to-ASN prefix file ('prefix asn org' lines) for -har imports")
	table := flag.Int("table", 0, "print only this table (1-9)")
	figure := flag.Int("figure", 0, "print only this figure (1-5, 9)")
	cdnASN := flag.Uint("cdn-asn", 13335, "deployment CDN ASN for Figure 9")
	privacyOnly := flag.Bool("privacy", false, "print only the §6.2 privacy-exposure comparison")
	policiesOnly := flag.Bool("policies", false, "print only the §2.3 policy cross-validation")
	schedOnly := flag.Bool("scheduling", false, "print only the §6.1 delivery-ordering comparison")
	workers := cliflags.Workers(0)
	funnelFile := flag.String("funnel", "", "print the coalescing funnel of this NDJSON trace (crawl/cdnsim -trace output) and exit")
	cacheOn := flag.Bool("cache", false, "print the warm-path cache warm/cold savings table and exit")
	revisits := flag.Int("revisits", 2, "visits per page in the warm/cold replay (with -cache)")
	ticketLife := flag.Int("ticket-lifetime", cache.DefaultTicketLifetimeSeconds, "TLS session-ticket lifetime in seconds (0 disables resumption)")
	protoName := flag.String("proto", "h2", "application protocol for the -cache replay (h1, h2, h3)")
	protoSweep := flag.Bool("proto-sweep", false, "print the per-protocol (h1/h2/h3) savings decomposition table and exit")
	matrix := flag.Bool("matrix", false, "print the persona × archetype × profile × transport scenario matrix and exit (use a small -sites, e.g. 150)")
	flag.Parse()

	proto, err := core.ParseProtocol(*protoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}

	if *matrix {
		cfg, err := scenario.ConfigFromSelectors(*seed, *sites, *workers, "", "", "", "")
		if err == nil {
			var res *scenario.Result
			res, err = scenario.Run(cfg)
			if err == nil {
				fmt.Print(res.Table())
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		return
	}

	if *funnelFile != "" {
		f, err := os.Open(*funnelFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		evs, err := obs.ReadNDJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		fmt.Print(report.FunnelFromEvents(evs).TableString())
		return
	}

	if *reencode {
		r, err := openCorpus(*inFile, *manifests)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriterSize(os.Stdout, 1<<20)
		w := corpus.NewWriter(bw, corpus.FormatNDJSON)
		_, err = corpus.Copy(w, r)
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if ferr := bw.Flush(); err == nil {
			err = ferr
		}
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		return
	}

	var c *report.Corpus
	var ds *webgen.Dataset
	if *harFile != "" {
		db := asn.NewDB()
		if *asnFile != "" {
			f, err := os.Open(*asnFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "report:", err)
				os.Exit(1)
			}
			if _, err := db.Load(f); err != nil {
				fmt.Fprintln(os.Stderr, "report:", err)
				os.Exit(1)
			}
			f.Close()
		}
		f, err := os.Open(*harFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		pages, err := har.ImportHAR(f, har.ImportOptions{
			LookupASN: func(a netip.Addr) uint32 { return uint32(db.LookupASN(a)) },
		})
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		ds = &webgen.Dataset{Pages: pages, ASDB: db}
	} else if *inFile != "" || *manifests != "" {
		r, err := openCorpus(*inFile, *manifests)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		c, err = report.NewCorpusFromReader(r, 0, *workers)
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
	} else {
		cfg := webgen.DefaultConfig()
		cfg.Sites = *sites
		cfg.Seed = *seed
		cfg.Workers = *workers
		var err error
		ds, err = webgen.Generate(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
	}
	if c == nil {
		c = report.NewCorpusWorkers(ds, *workers)
	}

	if *cacheOn || *protoSweep {
		opts := cache.Options{TicketLifetimeSeconds: *ticketLife}
		if *ticketLife == 0 {
			opts.TicketLifetimeSeconds = cache.TicketsDisabled
		}
		if *protoSweep {
			fmt.Print(report.ProtoSweepTable(c.ProtoSweep(*revisits, opts), netsim.DefaultParams(), "corpus"))
			return
		}
		label := "corpus"
		if proto != core.ProtoH2 {
			label = "corpus, " + proto.String()
		}
		fmt.Print(report.SavingsTable(c.WarmColdProto(*revisits, opts, proto), label))
		return
	}

	tables := map[int]func() string{
		1: func() string { _, s := c.Table1(5); return s },
		2: func() string { _, s := c.Table2(10); return s },
		3: func() string { _, _, s := c.Table3(); return s },
		4: func() string { _, s := c.Table4(10); return s },
		5: func() string { _, s := c.Table5(12); return s },
		6: func() string { _, s := c.Table6(3, 4); return s },
		7: func() string { _, s := c.Table7(10); return s },
		8: func() string { _, s := c.Table8(10); return s },
		9: func() string { _, s := c.Table9(3, 5); return s },
	}
	figures := map[int]func() string{
		1: func() string { _, _, s := c.Figure1(); return s },
		2: func() string { return c.Figure2(0, 72) },
		3: func() string { _, s := c.Figure3(); return s },
		4: func() string { _, _, s := c.Figure4(); return s },
		5: func() string { _, s := c.Figure5(); return s },
		9: func() string { _, s := c.Figure9Model(uint32(*cdnASN)); return s },
	}

	switch {
	case *policiesOnly:
		_, txt := c.PolicyComparison()
		fmt.Println(txt)
	case *privacyOnly:
		_, txt := c.PrivacyReport()
		fmt.Println(txt)
	case *schedOnly:
		_, txt := c.SchedulingReport(6)
		fmt.Println(txt)
	case *table != 0:
		f, ok := tables[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "report: no table %d\n", *table)
			os.Exit(1)
		}
		fmt.Println(f())
	case *figure != 0:
		f, ok := figures[*figure]
		if !ok {
			fmt.Fprintf(os.Stderr, "report: no figure %d (deployment figures live in cdnsim)\n", *figure)
			os.Exit(1)
		}
		fmt.Println(f())
	default:
		for i := 1; i <= 9; i++ {
			fmt.Println(tables[i]())
		}
		for _, i := range []int{1, 2, 3, 4, 5, 9} {
			fmt.Println(figures[i]())
		}
		_, h := c.Headline()
		fmt.Println(h)
		_, ptxt := c.PrivacyReport()
		fmt.Println(ptxt)
		_, stxt := c.SchedulingReport(6)
		fmt.Println(stxt)
		_, pol := c.PolicyComparison()
		fmt.Println(pol)
	}
}

// openCorpus resolves the two corpus-input flags: -manifest chains
// shard files (verifying checksums as they stream), -in opens a single
// file sniffing its encoding. Exactly one may be set.
func openCorpus(inFile, manifests string) (corpus.Reader, error) {
	switch {
	case inFile != "" && manifests != "":
		return nil, fmt.Errorf("-in and -manifest are mutually exclusive")
	case manifests != "":
		return corpus.OpenManifest(strings.Split(manifests, ",")...)
	case inFile != "":
		return corpus.Open(inFile)
	}
	return nil, fmt.Errorf("-reencode needs -in or -manifest")
}
