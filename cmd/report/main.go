// Command report regenerates the paper's tables and figures from a
// synthetic corpus.
//
// Usage:
//
//	report -sites 20000                  # everything
//	report -sites 20000 -table 2        # one table
//	report -sites 20000 -figure 3       # one figure
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"runtime"

	"respectorigin/internal/asn"
	"respectorigin/internal/cache"
	"respectorigin/internal/core"
	"respectorigin/internal/har"
	"respectorigin/internal/netsim"
	"respectorigin/internal/obs"
	"respectorigin/internal/report"
	"respectorigin/internal/webgen"
)

func main() {
	sites := flag.Int("sites", 20000, "corpus size")
	seed := flag.Int64("seed", 1, "generator seed")
	inFile := flag.String("in", "", "load corpus from an NDJSON file (cmd/crawl output) instead of generating")
	harFile := flag.String("har", "", "load a standard HAR 1.2 archive (WebPageTest/DevTools) instead of generating")
	asnFile := flag.String("asn", "", "IP-to-ASN prefix file ('prefix asn org' lines) for -har imports")
	table := flag.Int("table", 0, "print only this table (1-9)")
	figure := flag.Int("figure", 0, "print only this figure (1-5, 9)")
	cdnASN := flag.Uint("cdn-asn", 13335, "deployment CDN ASN for Figure 9")
	privacyOnly := flag.Bool("privacy", false, "print only the §6.2 privacy-exposure comparison")
	policiesOnly := flag.Bool("policies", false, "print only the §2.3 policy cross-validation")
	schedOnly := flag.Bool("scheduling", false, "print only the §6.1 delivery-ordering comparison")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for generation and analysis")
	funnelFile := flag.String("funnel", "", "print the coalescing funnel of this NDJSON trace (crawl/cdnsim -trace output) and exit")
	cacheOn := flag.Bool("cache", false, "print the warm-path cache warm/cold savings table and exit")
	revisits := flag.Int("revisits", 2, "visits per page in the warm/cold replay (with -cache)")
	ticketLife := flag.Int("ticket-lifetime", cache.DefaultTicketLifetimeSeconds, "TLS session-ticket lifetime in seconds (0 disables resumption)")
	protoName := flag.String("proto", "h2", "application protocol for the -cache replay (h1, h2, h3)")
	protoSweep := flag.Bool("proto-sweep", false, "print the per-protocol (h1/h2/h3) savings decomposition table and exit")
	flag.Parse()

	proto, err := core.ParseProtocol(*protoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}

	if *funnelFile != "" {
		f, err := os.Open(*funnelFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		evs, err := obs.ReadNDJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		fmt.Print(report.FunnelFromEvents(evs).TableString())
		return
	}

	var ds *webgen.Dataset
	if *harFile != "" {
		db := asn.NewDB()
		if *asnFile != "" {
			f, err := os.Open(*asnFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "report:", err)
				os.Exit(1)
			}
			if _, err := db.Load(f); err != nil {
				fmt.Fprintln(os.Stderr, "report:", err)
				os.Exit(1)
			}
			f.Close()
		}
		f, err := os.Open(*harFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		pages, err := har.ImportHAR(f, har.ImportOptions{
			LookupASN: func(a netip.Addr) uint32 { return uint32(db.LookupASN(a)) },
		})
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		ds = &webgen.Dataset{Pages: pages, ASDB: db}
	} else if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		pages, err := har.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		ds = &webgen.Dataset{Pages: pages, ASDB: webgen.RebuildASDB(pages)}
	} else {
		cfg := webgen.DefaultConfig()
		cfg.Sites = *sites
		cfg.Seed = *seed
		cfg.Workers = *workers
		var err error
		ds, err = webgen.Generate(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
	}
	c := report.NewCorpusWorkers(ds, *workers)

	if *cacheOn || *protoSweep {
		opts := cache.Options{TicketLifetimeSeconds: *ticketLife}
		if *ticketLife == 0 {
			opts.TicketLifetimeSeconds = cache.TicketsDisabled
		}
		if *protoSweep {
			fmt.Print(report.ProtoSweepTable(c.ProtoSweep(*revisits, opts), netsim.DefaultParams(), "corpus"))
			return
		}
		label := "corpus"
		if proto != core.ProtoH2 {
			label = "corpus, " + proto.String()
		}
		fmt.Print(report.SavingsTable(c.WarmColdProto(*revisits, opts, proto), label))
		return
	}

	tables := map[int]func() string{
		1: func() string { _, s := c.Table1(5); return s },
		2: func() string { _, s := c.Table2(10); return s },
		3: func() string { _, _, s := c.Table3(); return s },
		4: func() string { _, s := c.Table4(10); return s },
		5: func() string { _, s := c.Table5(12); return s },
		6: func() string { _, s := c.Table6(3, 4); return s },
		7: func() string { _, s := c.Table7(10); return s },
		8: func() string { _, s := c.Table8(10); return s },
		9: func() string { _, s := c.Table9(3, 5); return s },
	}
	figures := map[int]func() string{
		1: func() string { _, _, s := c.Figure1(); return s },
		2: func() string { return c.Figure2(0, 72) },
		3: func() string { _, s := c.Figure3(); return s },
		4: func() string { _, _, s := c.Figure4(); return s },
		5: func() string { _, s := c.Figure5(); return s },
		9: func() string { _, s := c.Figure9Model(uint32(*cdnASN)); return s },
	}

	switch {
	case *policiesOnly:
		_, txt := c.PolicyComparison()
		fmt.Println(txt)
	case *privacyOnly:
		_, txt := c.PrivacyReport()
		fmt.Println(txt)
	case *schedOnly:
		_, txt := c.SchedulingReport(6)
		fmt.Println(txt)
	case *table != 0:
		f, ok := tables[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "report: no table %d\n", *table)
			os.Exit(1)
		}
		fmt.Println(f())
	case *figure != 0:
		f, ok := figures[*figure]
		if !ok {
			fmt.Fprintf(os.Stderr, "report: no figure %d (deployment figures live in cdnsim)\n", *figure)
			os.Exit(1)
		}
		fmt.Println(f())
	default:
		for i := 1; i <= 9; i++ {
			fmt.Println(tables[i]())
		}
		for _, i := range []int{1, 2, 3, 4, 5, 9} {
			fmt.Println(figures[i]())
		}
		_, h := c.Headline()
		fmt.Println(h)
		_, ptxt := c.PrivacyReport()
		fmt.Println(ptxt)
		_, stxt := c.SchedulingReport(6)
		fmt.Println(stxt)
		_, pol := c.PolicyComparison()
		fmt.Println(pol)
	}
}
