// Command bench runs the repo's benchmark trajectory harness.
//
// Run mode measures the registered suites and writes a machine-readable
// trajectory file (the committed BENCH_*.json series):
//
//	go run ./cmd/bench -suite micro -short -out /tmp/bench.json
//
// Compare mode diffs two trajectory files and exits non-zero on
// regression — CI runs it against the committed baseline:
//
//	go run ./cmd/bench -compare BENCH_6.json /tmp/bench.json
//
// Rules: a gated (hot path) benchmark fails on ns/op beyond -threshold
// and on any allocs/op increase; non-gated ns/op swings are reported as
// notes; a baseline entry missing from the new run fails; a malformed
// or missing baseline file fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"respectorigin/internal/bench"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list registered suites and benchmarks, then exit")
		suite     = flag.String("suite", "all", "comma-separated suites to run (\"micro\" = all per-package suites, \"all\" = everything)")
		short     = flag.Bool("short", false, "quick mode: ~50ms per benchmark instead of ~1s")
		benchtime = flag.String("benchtime", "", "explicit benchtime (e.g. 100ms, 200x); overrides -short")
		out       = flag.String("out", "", "write results JSON to this path (default: stdout)")
		compare   = flag.Bool("compare", false, "compare mode: bench -compare old.json new.json")
		threshold = flag.Float64("threshold", bench.DefaultThreshold, "relative ns/op increase tolerated in -compare")
	)
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *suite, *threshold))
	}
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "bench: unexpected arguments %v (did you mean -compare old.json new.json?)\n", flag.Args())
		os.Exit(2)
	}
	if *list {
		for _, bm := range bench.All() {
			gate := ""
			if bm.Gated {
				gate = "  [gated: allocs/op compared strictly]"
			}
			fmt.Printf("%s%s\n", bm.ID(), gate)
		}
		return
	}

	// testing.Benchmark honors -test.benchtime once testing.Init has
	// registered the flags; that is how a plain binary prices its runs.
	testing.Init()
	bt := "1s"
	if *short {
		bt = "50ms"
	}
	if *benchtime != "" {
		bt = *benchtime
	}
	if err := flag.Set("test.benchtime", bt); err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -benchtime %q: %v\n", bt, err)
		os.Exit(2)
	}

	bms, err := bench.Select(*suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(2)
	}
	if len(bms) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmarks selected")
		os.Exit(2)
	}

	f := bench.Run(bms, func(r bench.Result) {
		line := fmt.Sprintf("%-48s %12.1f ns/op %8d B/op %6d allocs/op",
			r.ID(), r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if r.MBPerS > 0 {
			line += fmt.Sprintf(" %10.1f MB/s", r.MBPerS)
		}
		fmt.Fprintln(os.Stderr, line)
	})

	if *out == "" {
		raw, err := jsonIndent(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(raw))
		return
	}
	if err := bench.Write(*out, f); err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(f.Benchmarks), *out)
}

func runCompare(args []string, suite string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "bench: -compare needs exactly two files: old.json new.json")
		return 2
	}
	old, err := bench.Load(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: baseline: %v\n", err)
		return 2
	}
	cur, err := bench.Load(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: new results: %v\n", err)
		return 2
	}
	if old, err = bench.Filter(old, suite); err != nil {
		fmt.Fprintf(os.Stderr, "bench: baseline: %v\n", err)
		return 2
	}
	if cur, err = bench.Filter(cur, suite); err != nil {
		fmt.Fprintf(os.Stderr, "bench: new results: %v\n", err)
		return 2
	}
	findings := bench.Compare(old, cur, threshold)
	fatal := 0
	for _, f := range findings {
		tag := "note"
		if f.Fatal {
			tag = "FAIL"
			fatal++
		}
		fmt.Printf("%s  %-16s %-44s %s\n", tag, f.Kind, f.ID, f.Detail)
	}
	if fatal > 0 {
		fmt.Printf("bench: %d regression(s) against %s\n", fatal, args[0])
		return 1
	}
	fmt.Printf("bench: no regressions against %s (%d baseline benchmarks, threshold %.0f%%)\n",
		args[0], len(old.Benchmarks), threshold*100)
	return 0
}

func jsonIndent(f bench.File) ([]byte, error) {
	// bench.Write owns file output; stdout goes through the same schema.
	tmp, err := os.CreateTemp("", "bench*.json")
	if err != nil {
		return nil, err
	}
	defer os.Remove(tmp.Name())
	tmp.Close()
	if err := bench.Write(tmp.Name(), f); err != nil {
		return nil, err
	}
	return os.ReadFile(tmp.Name())
}
