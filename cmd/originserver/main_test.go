package main

import (
	"reflect"
	"testing"
)

func TestSplitNonEmpty(t *testing.T) {
	got := splitNonEmpty(" a.example, ,b.example,,c.example ")
	want := []string{"a.example", "b.example", "c.example"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("splitNonEmpty = %v", got)
	}
	if splitNonEmpty("") != nil {
		t.Error("empty input should yield nil")
	}
}
