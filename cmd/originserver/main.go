// Command originserver runs an HTTPS HTTP/2 server with RFC 8336
// ORIGIN frame support — the server-side implementation the paper
// found missing from every production web server.
//
// It generates a private CA and a leaf certificate covering every
// configured hostname, serves all of them on one listener, and
// advertises the configured origin set on stream 0 of every connection.
//
// Usage:
//
//	originserver -listen 127.0.0.1:8443 \
//	    -hosts www.site.example,static.site.example,cdnjs.shared.example \
//	    -origins static.site.example,cdnjs.shared.example \
//	    -ca-out ca.pem
//
// Connect with cmd/origincurl using the emitted CA certificate.
package main

import (
	"crypto/tls"
	"encoding/pem"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	_ "net/http/pprof"

	"respectorigin/internal/certs"
	"respectorigin/internal/h2"
	"respectorigin/internal/hpack"
	"respectorigin/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8443", "listen address")
	hosts := flag.String("hosts", "www.site.example,cdnjs.shared.example", "comma-separated hostnames on the certificate")
	origins := flag.String("origins", "", "comma-separated origin set (default: all hosts)")
	caOut := flag.String("ca-out", "", "write the CA certificate PEM here for clients")
	metricsAddr := flag.String("metrics-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof) on this address")
	flag.Parse()

	hostList := splitNonEmpty(*hosts)
	if len(hostList) == 0 {
		log.Fatal("originserver: -hosts must name at least one hostname")
	}
	originList := splitNonEmpty(*origins)
	if len(originList) == 0 {
		originList = hostList
	}

	ca, err := certs.NewCA("originserver CA")
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := ca.Issue(hostList...)
	if err != nil {
		log.Fatal(err)
	}
	if *caOut != "" {
		pemBytes := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.Root().Raw})
		if err := os.WriteFile(*caOut, pemBytes, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("CA certificate written to %s", *caOut)
	}

	authoritative := map[string]bool{}
	for _, h := range hostList {
		authoritative[h] = true
	}
	var metrics *obs.Metrics
	if *metricsAddr != "" {
		metrics = obs.NewMetrics()
		metrics.PublishExpvar("originserver")
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/debug/vars (pprof under /debug/pprof)", *metricsAddr)
	}

	srv := &h2.Server{
		Handler: h2.HandlerFunc(func(w *h2.ResponseWriter, r *h2.Request) {
			w.WriteHeader(200,
				hpack.HeaderField{Name: "content-type", Value: "text/plain; charset=utf-8"},
				hpack.HeaderField{Name: "server", Value: "respectorigin/originserver"},
			)
			fmt.Fprintf(w, "hello from %s (path %s)\n", r.Authority, r.Path)
		}),
		OriginSet: originList,
		Authoritative: func(authority string) bool {
			host := authority
			if i := strings.LastIndexByte(host, ':'); i >= 0 {
				host = host[:i]
			}
			return authoritative[host]
		},
	}
	if metrics != nil {
		srv.Recorder = metrics
	}

	tlsCfg := &tls.Config{
		Certificates: []tls.Certificate{leaf.TLSCertificate()},
		NextProtos:   []string{"h2"},
	}
	ln, err := tls.Listen("tcp", *listen, tlsCfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving HTTP/2 + ORIGIN on %s", *listen)
	log.Printf("certificate SANs: %v", leaf.SANs())
	log.Printf("origin set:       %v", originList)
	for {
		nc, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go func(nc net.Conn) {
			if err := srv.ServeConn(nc); err != nil {
				log.Printf("conn %s: %v", nc.RemoteAddr(), err)
			}
		}(nc)
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
