package main

import "testing"

func TestSplitURL(t *testing.T) {
	cases := []struct{ in, host, path string }{
		{"https://example.com/a/b", "example.com", "/a/b"},
		{"https://example.com", "example.com", "/"},
		{"example.com/x", "example.com", "/x"},
		{"https://h.example/", "h.example", "/"},
	}
	for _, c := range cases {
		host, path := splitURL(c.in)
		if host != c.host || path != c.path {
			t.Errorf("splitURL(%q) = %q, %q", c.in, host, path)
		}
	}
}
