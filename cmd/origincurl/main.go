// Command origincurl fetches one or more https URLs over a single
// HTTP/2 connection, reporting the server's ORIGIN frame and every
// coalescing decision — a curl for connection coalescing.
//
// All URLs are fetched through the connection established to the first
// URL's host; hosts beyond the first succeed only when the origin set
// plus certificate authorize coalescing (or -force is given, which
// demonstrates 421 Misdirected Request handling).
//
// Usage:
//
//	origincurl -connect 127.0.0.1:8443 -ca ca.pem \
//	    https://www.site.example/ https://cdnjs.shared.example/lib.js
//
// With -chaos the underlying TCP connection is wrapped in a seeded
// fault layer (resets after a byte budget, loss-driven read delays), so
// the client's deadline/keepalive handling can be exercised against a
// real server:
//
//	origincurl -chaos reset=1,loss=2 -chaos-seed 7 -timeout 5s -ping 2s ...
package main

import (
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"respectorigin/internal/faults"
	"respectorigin/internal/h2"
)

func main() {
	connect := flag.String("connect", "", "host:port to connect to (default: first URL host :443)")
	caFile := flag.String("ca", "", "PEM file with the trusted CA certificate")
	insecure := flag.Bool("insecure", false, "skip certificate verification")
	force := flag.Bool("force", false, "send requests for non-coalescable hosts anyway")
	chaosSpec := flag.String("chaos", "", "fault plan for the transport, e.g. reset=1,loss=2 (empty: none)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the -chaos fault schedule")
	timeout := flag.Duration("timeout", 0, "per-frame read/write deadline on the HTTP/2 connection (0: none)")
	ping := flag.Duration("ping", 0, "PING keepalive interval (0: disabled)")
	flag.Parse()

	urls := flag.Args()
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "usage: origincurl [flags] https://host/path ...")
		os.Exit(2)
	}
	firstHost, _ := splitURL(urls[0])
	addr := *connect
	if addr == "" {
		addr = firstHost + ":443"
	}

	tlsCfg := &tls.Config{
		ServerName: firstHost,
		NextProtos: []string{"h2"},
	}
	if *insecure {
		tlsCfg.InsecureSkipVerify = true
	} else if *caFile != "" {
		pemBytes, err := os.ReadFile(*caFile)
		if err != nil {
			log.Fatal(err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pemBytes) {
			log.Fatalf("no certificates in %s", *caFile)
		}
		tlsCfg.RootCAs = pool
	}

	plan, err := faults.ParsePlan(*chaosSpec)
	if err != nil {
		log.Fatalf("origincurl: %v", err)
	}
	inj := faults.NewInjector(plan, *chaosSeed)

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	var nc net.Conn = raw
	if inj.Enabled() {
		// Wrapping below TLS means an injected reset can land anywhere —
		// including inside the handshake, like a real mid-path RST.
		chaos := faults.NewChaosConn(raw, inj)
		if b := chaos.Budget(); b >= 0 {
			fmt.Printf("chaos: reset scheduled after %d bytes\n", b)
		}
		nc = chaos
	}
	tc := tls.Client(nc, tlsCfg)
	if err := tc.Handshake(); err != nil {
		log.Fatal(err)
	}
	opts := h2.ClientConnOptions{
		Origin: firstHost,
		OnOrigin: func(origins []string) {
			fmt.Printf("<- ORIGIN frame: %v\n", origins)
		},
		ReadTimeout:  *timeout,
		WriteTimeout: *timeout,
	}
	if *ping > 0 {
		opts.PingInterval = *ping
		opts.PingTimeout = *ping
		if opts.ReadTimeout > 0 && opts.ReadTimeout <= *ping {
			// A read deadline shorter than the keepalive period would kill
			// idle-but-healthy connections before the first PING.
			opts.ReadTimeout = *ping + time.Second
		}
	}
	cc, err := h2.NewClientConn(tc, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()

	for _, u := range urls {
		host, path := splitURL(u)
		coalescable := host == firstHost || cc.CanRequest(host)
		fmt.Printf("-> GET https://%s%s", host, path)
		switch {
		case host == firstHost:
			fmt.Printf("  [primary connection]\n")
		case coalescable:
			fmt.Printf("  [coalesced: origin set + certificate authorize %s]\n", host)
		case *force:
			fmt.Printf("  [NOT authorized - sending anyway to demonstrate 421]\n")
		default:
			fmt.Printf("  [skipped: connection not authoritative for %s]\n", host)
			continue
		}
		resp, err := cc.Get(host, path)
		if err != nil {
			fmt.Printf("<- error: %v\n", err)
			continue
		}
		fmt.Printf("<- %d (%d body bytes, stream %d)\n", resp.Status, len(resp.Body), resp.StreamID)
		if resp.Status == 421 {
			fmt.Printf("   421 Misdirected Request: the server does not serve %s on this connection\n", host)
		}
	}
	fmt.Printf("origin set on this connection: %v\n", cc.OriginSet().All())
	if inj.Enabled() {
		fmt.Print(inj.Report())
	}
}

func splitURL(u string) (host, path string) {
	s := strings.TrimPrefix(u, "https://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i], s[i:]
	}
	return s, "/"
}
