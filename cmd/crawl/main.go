// Command crawl generates the synthetic web corpus (the stand-in for
// the paper's WebPageTest crawl of the Tranco top-500K) and writes it
// as newline-delimited JSON HAR-style pages.
//
// Generation is sharded across -workers goroutines and the NDJSON is
// streamed as shards complete, so memory stays bounded by the in-flight
// shard window rather than the corpus size. Output is byte-identical
// for any worker count.
//
// Usage:
//
//	crawl -sites 20000 -seed 1 -workers 8 -out dataset.ndjson
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"

	"respectorigin/internal/cache"
	"respectorigin/internal/core"
	"respectorigin/internal/har"
	"respectorigin/internal/netsim"
	"respectorigin/internal/obs"
	"respectorigin/internal/report"
	"respectorigin/internal/webgen"
)

func main() {
	sites := flag.Int("sites", 20000, "number of ranked sites to attempt")
	seed := flag.Int64("seed", 1, "deterministic generator seed")
	out := flag.String("out", "dataset.ndjson", "output file (- for stdout)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "generation worker goroutines")
	traceOut := flag.String("trace", "", "write per-page-load trace events as NDJSON to this file")
	cacheOn := flag.Bool("cache", false, "replay each page against a warm-path cache and print the savings table to stderr")
	revisits := flag.Int("revisits", 1, "visits per page in the warm/cold replay (with -cache)")
	ticketLife := flag.Int("ticket-lifetime", cache.DefaultTicketLifetimeSeconds, "TLS session-ticket lifetime in seconds (0 disables resumption)")
	protoName := flag.String("proto", "h2", "application protocol for the -cache replay (h1, h2, h3)")
	protoSweep := flag.Bool("proto-sweep", false, "replay each page under every protocol and print the per-protocol savings table to stderr")
	flag.Parse()

	proto, err := core.ParseProtocol(*protoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(2)
	}

	cacheOpts := cache.Options{TicketLifetimeSeconds: *ticketLife}
	if *ticketLife == 0 {
		cacheOpts.TicketLifetimeSeconds = cache.TicketsDisabled
	}

	cfg := webgen.DefaultConfig()
	cfg.Sites = *sites
	cfg.Seed = *seed
	cfg.Workers = *workers

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crawl:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	sw := har.NewStreamWriter(bw)
	emit := sw.Write
	var trace *obs.Trace
	if *traceOut != "" {
		trace = obs.NewTrace()
		emit = func(p *har.Page) error {
			core.EmitPageEvents(trace, p)
			return sw.Write(p)
		}
	}
	var warmCosts []core.VisitCosts
	if *cacheOn {
		// Fold each page's warm/cold replay as it streams past; ledger
		// addition is order-independent, so the totals match a batch
		// pass regardless of shard completion order.
		warmCosts = make([]core.VisitCosts, *revisits)
		inner := emit
		emit = func(p *har.Page) error {
			for v, vc := range core.ProtocolReplaySequence(p, *revisits, cacheOpts, proto) {
				warmCosts[v].Add(vc)
			}
			return inner(p)
		}
	}
	var sweepCosts []report.ProtoCosts
	if *protoSweep {
		// Same streaming fold, once per protocol: each page is replayed
		// under h1, h2 and h3 against its own fresh caches, so the sweep
		// rides the generation pass without a second corpus walk.
		sweepCosts = make([]report.ProtoCosts, len(core.Protocols))
		for i, pr := range core.Protocols {
			sweepCosts[i] = report.ProtoCosts{Proto: pr, Visits: make([]core.VisitCosts, *revisits)}
		}
		inner := emit
		emit = func(p *har.Page) error {
			for i := range sweepCosts {
				for v, vc := range core.ProtocolReplaySequence(p, *revisits, cacheOpts, sweepCosts[i].Proto) {
					sweepCosts[i].Visits[v].Add(vc)
				}
			}
			return inner(p)
		}
	}
	res, err := webgen.GenerateStream(cfg, emit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "crawl: %d successful page loads (%d failures) -> %s\n",
		res.Pages, res.Failures, *out)
	if *cacheOn {
		label := "crawl corpus"
		if proto != core.ProtoH2 {
			label = "crawl corpus, " + proto.String()
		}
		fmt.Fprint(os.Stderr, report.SavingsTable(warmCosts, label))
	}
	if *protoSweep {
		fmt.Fprint(os.Stderr, report.ProtoSweepTable(sweepCosts, netsim.DefaultParams(), "crawl corpus"))
	}
	if trace != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crawl:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteNDJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "crawl:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "crawl: %d trace events -> %s\n", trace.Len(), *traceOut)
	}
}
