// Command crawl generates the synthetic web corpus (the stand-in for
// the paper's WebPageTest crawl of the Tranco top-500K) and writes it
// through the unified corpus API as NDJSON or the compact columnar
// encoding.
//
// Generation is sharded across -workers goroutines and pages stream
// out as shards complete, so memory stays bounded by the in-flight
// shard window rather than the corpus size. Output is byte-identical
// for any worker count.
//
// A corpus can also be split across OS processes: -shards N -shard i
// crawls only rank shard i and writes its file plus a single-shard
// manifest (<out>.manifest.json) recording the rank range, page count
// and checksum. cmd/report merges the manifests and analyzes the
// shards as one corpus, byte-identical to a single-process run.
//
// Usage:
//
//	crawl -sites 20000 -seed 1 -workers 8 -out dataset.ndjson
//	crawl -sites 20000 -format columnar -out dataset.col
//	crawl -sites 20000 -shards 2 -shard 0 -out s0.col -format columnar
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"respectorigin/internal/cache"
	"respectorigin/internal/cliflags"
	"respectorigin/internal/core"
	"respectorigin/internal/corpus"
	"respectorigin/internal/har"
	"respectorigin/internal/netsim"
	"respectorigin/internal/obs"
	"respectorigin/internal/report"
	"respectorigin/internal/webgen"
)

func main() {
	sites := cliflags.Sites(20000)
	seed := cliflags.Seed(1)
	out := cliflags.Out("dataset.ndjson", "the corpus")
	workers := cliflags.Workers(0)
	formatName := flag.String("format", "ndjson", "corpus encoding: ndjson | columnar")
	shards := flag.Int("shards", 1, "total shard count of a multi-process crawl")
	shard := flag.Int("shard", -1, "rank shard [0, shards) this process crawls; -1 crawls everything")
	traceOut := flag.String("trace", "", "write per-page-load trace events as NDJSON to this file")
	cacheOn := flag.Bool("cache", false, "replay each page against a warm-path cache and print the savings table to stderr")
	revisits := flag.Int("revisits", 1, "visits per page in the warm/cold replay (with -cache)")
	ticketLife := flag.Int("ticket-lifetime", cache.DefaultTicketLifetimeSeconds, "TLS session-ticket lifetime in seconds (0 disables resumption)")
	protoName := flag.String("proto", "h2", "application protocol for the -cache replay (h1, h2, h3)")
	protoSweep := flag.Bool("proto-sweep", false, "replay each page under every protocol and print the per-protocol savings table to stderr")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}

	proto, err := core.ParseProtocol(*protoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(2)
	}
	format, err := corpus.ParseFormat(*formatName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(2)
	}
	sharded := *shard >= 0 || *shards != 1
	if sharded {
		switch {
		case *shards < 1:
			fail(fmt.Errorf("-shards must be at least 1"))
		case *shard < 0 || *shard >= *shards:
			fail(fmt.Errorf("-shard %d outside [0, %d); each process crawls exactly one shard", *shard, *shards))
		case *out == "-" || *out == "":
			fail(fmt.Errorf("sharded crawls need a real -out file (the manifest records its checksum)"))
		}
	}

	cacheOpts := cache.Options{TicketLifetimeSeconds: *ticketLife}
	if *ticketLife == 0 {
		cacheOpts.TicketLifetimeSeconds = cache.TicketsDisabled
	}

	cfg := webgen.DefaultConfig()
	cfg.Sites = *sites
	cfg.Seed = *seed
	cfg.Workers = *workers
	if sharded {
		cfg.RankLo, cfg.RankHi = corpus.ShardRange(*sites, *shards, *shard)
	}

	// The corpus writer: a checksummed shard file in sharded mode,
	// otherwise a buffered stream to -out. Both paths check every close
	// and flush — a full disk at the final flush must fail the crawl,
	// not truncate the corpus silently.
	var (
		w         corpus.Writer
		sw        *corpus.ShardWriter
		finishOut func() error
	)
	if sharded {
		sw, err = corpus.CreateShard(*out, format)
		if err != nil {
			fail(err)
		}
		w = sw
		finishOut = sw.Close
	} else {
		o, err := cliflags.OpenOutput(*out)
		if err != nil {
			fail(err)
		}
		bw := bufio.NewWriterSize(o, 1<<20)
		fw := corpus.NewWriter(bw, format)
		w = fw
		finishOut = func() error {
			err := fw.Close()
			if ferr := bw.Flush(); err == nil {
				err = ferr
			}
			if cerr := o.Close(); err == nil {
				err = cerr
			}
			return err
		}
	}

	emit := w.Write
	var trace *obs.Trace
	if *traceOut != "" {
		trace = obs.NewTrace()
		inner := emit
		emit = func(p *har.Page) error {
			core.EmitPageEvents(trace, p)
			return inner(p)
		}
	}
	var warmCosts []core.VisitCosts
	if *cacheOn {
		// Fold each page's warm/cold replay as it streams past; ledger
		// addition is order-independent, so the totals match a batch
		// pass regardless of shard completion order.
		warmCosts = make([]core.VisitCosts, *revisits)
		inner := emit
		emit = func(p *har.Page) error {
			for v, vc := range core.ProtocolReplaySequence(p, *revisits, cacheOpts, proto) {
				warmCosts[v].Add(vc)
			}
			return inner(p)
		}
	}
	var sweepCosts []report.ProtoCosts
	if *protoSweep {
		// Same streaming fold, once per protocol: each page is replayed
		// under h1, h2 and h3 against its own fresh caches, so the sweep
		// rides the generation pass without a second corpus walk.
		sweepCosts = make([]report.ProtoCosts, len(core.Protocols))
		for i, pr := range core.Protocols {
			sweepCosts[i] = report.ProtoCosts{Proto: pr, Visits: make([]core.VisitCosts, *revisits)}
		}
		inner := emit
		emit = func(p *har.Page) error {
			for i := range sweepCosts {
				for v, vc := range core.ProtocolReplaySequence(p, *revisits, cacheOpts, sweepCosts[i].Proto) {
					sweepCosts[i].Visits[v].Add(vc)
				}
			}
			return inner(p)
		}
	}
	res, err := webgen.GenerateStream(cfg, emit)
	if err != nil {
		fail(err)
	}
	if err := finishOut(); err != nil {
		fail(err)
	}
	if sharded {
		lo, hi := corpus.ShardRange(*sites, *shards, *shard)
		m := corpus.Manifest{
			Schema:  corpus.ManifestSchema,
			Format:  format,
			Version: format.Version(),
			Seed:    *seed,
			Sites:   *sites,
			Shards:  []corpus.ShardInfo{sw.Info(*shard, lo, hi)},
		}
		mp := *out + ".manifest.json"
		if err := corpus.WriteManifest(mp, m); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "crawl: shard %d/%d ranks [%d,%d) -> %s + %s\n",
			*shard, *shards, lo, hi, *out, mp)
	}
	fmt.Fprintf(os.Stderr, "crawl: %d successful page loads (%d failures) -> %s\n",
		res.Pages, res.Failures, *out)
	if *cacheOn {
		label := "crawl corpus"
		if proto != core.ProtoH2 {
			label = "crawl corpus, " + proto.String()
		}
		fmt.Fprint(os.Stderr, report.SavingsTable(warmCosts, label))
	}
	if *protoSweep {
		fmt.Fprint(os.Stderr, report.ProtoSweepTable(sweepCosts, netsim.DefaultParams(), "crawl corpus"))
	}
	if trace != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := trace.WriteNDJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "crawl: %d trace events -> %s\n", trace.Len(), *traceOut)
	}
}
