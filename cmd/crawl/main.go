// Command crawl generates the synthetic web corpus (the stand-in for
// the paper's WebPageTest crawl of the Tranco top-500K) and writes it
// as newline-delimited JSON HAR-style pages.
//
// Usage:
//
//	crawl -sites 20000 -seed 1 -out dataset.ndjson
package main

import (
	"flag"
	"fmt"
	"os"

	"respectorigin/internal/har"
	"respectorigin/internal/webgen"
)

func main() {
	sites := flag.Int("sites", 20000, "number of ranked sites to attempt")
	seed := flag.Int64("seed", 1, "deterministic generator seed")
	out := flag.String("out", "dataset.ndjson", "output file (- for stdout)")
	flag.Parse()

	cfg := webgen.DefaultConfig()
	cfg.Sites = *sites
	cfg.Seed = *seed
	ds, err := webgen.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crawl:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := har.WriteJSON(w, ds.Pages); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "crawl: %d successful page loads (%d failures) -> %s\n",
		len(ds.Pages), ds.Failures, *out)
}
