// Command loadgen runs the open-loop live-traffic serving mode: an
// arrival process of independent users (Poisson, diurnal, or flash
// crowd) drives the CDN + network-model + queueing stack on the virtual
// clock, and the run reports tail latency (p50/p90/p99/p99.9), SLO
// attainment, and the coalescing rate under load.
//
// Usage:
//
//	loadgen -users 100000 -rate 200 -arrival poisson
//	loadgen -users 200000 -arrival flash -slo-ms 1000
//	loadgen -users 50000 -sweep 0.5,1,2,4 -out sweep.ndjson
//
// The run is deterministic: the same seed and flags produce a
// byte-identical NDJSON summary for every -workers value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"respectorigin/internal/cliflags"
	"respectorigin/internal/core"
	"respectorigin/internal/loadgen"
	"respectorigin/internal/report"
)

func main() {
	def := loadgen.DefaultConfig()
	users := flag.Int("users", def.Users, "number of arriving users")
	seed := cliflags.Seed(def.Seed)
	workers := cliflags.Workers(0)
	arrival := flag.String("arrival", def.Arrival, "arrival process: poisson | diurnal | flash")
	rate := flag.Float64("rate", def.RatePerSec, "mean user arrival rate per second")
	zones := flag.Int("zones", def.Zones, "customer zones on the CDN")
	pops := flag.Int("pops", def.PoPs, "points of presence")
	popServers := flag.Int("pop-servers", def.PoPServers, "servers per PoP (the c of each G/G/c queue)")
	sloMs := flag.Float64("slo-ms", def.SLOMs, "per-visit latency objective in ms")
	visitsMean := flag.Float64("visits-mean", def.VisitsMean, "mean visits per user (geometric, min 1)")
	revisitSec := flag.Float64("revisit-sec", def.RevisitMeanSec, "mean gap between a user's visits in seconds")
	idleSec := flag.Float64("idle-timeout-sec", def.IdleTimeoutSec, "server idle timeout closing pooled connections")
	sweep := flag.String("sweep", "", "comma-separated rate multipliers; runs one point per value and prints the under-load table")
	protoName := flag.String("proto", "h2", "application protocol modern clients speak: h1 | h2 | h3")
	out := cliflags.Out("", "the NDJSON summary")
	flag.Parse()

	proto, err := core.ParseProtocol(*protoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}

	cfg := def
	cfg.Users = *users
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Arrival = *arrival
	cfg.RatePerSec = *rate
	cfg.Zones = *zones
	cfg.PoPs = *pops
	cfg.PoPServers = *popServers
	cfg.SLOMs = *sloMs
	cfg.VisitsMean = *visitsMean
	cfg.RevisitMeanSec = *revisitSec
	cfg.IdleTimeoutSec = *idleSec
	cfg.Proto = proto

	var results []loadgen.Result
	if *sweep != "" {
		mults, err := parseMultipliers(*sweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(2)
		}
		results, err = loadgen.Sweep(cfg, mults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(report.UnderLoadTable(results))
	} else {
		res, err := loadgen.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(2)
		}
		results = []loadgen.Result{res}
		fmt.Println(res)
	}

	if *out != "" {
		o, err := cliflags.OpenOutput(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		err = loadgen.WriteNDJSON(o, results...)
		if cerr := o.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
}

func parseMultipliers(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || m <= 0 {
			return nil, fmt.Errorf("bad sweep multiplier %q", part)
		}
		out = append(out, m)
	}
	return out, nil
}
