// Command replaycheck is the determinism differential checker: it
// replays the seeded crawl pipeline (corpus NDJSON, trace NDJSON, and
// the report tables computed from the re-parsed corpus) at several
// worker counts, repeating each, and byte-compares every artifact
// against the first run. The pipeline promises output independent of
// scheduling and parallelism; any divergence exits nonzero.
//
// Usage:
//
//	replaycheck -sites 400 -seed 1 -workers 1,4,16 -repeats 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"respectorigin/internal/cliflags"
	"respectorigin/internal/conformance"
)

func main() {
	sites := cliflags.Sites(400)
	seed := cliflags.Seed(1)
	workers := flag.String("workers", "1,4,16", "comma-separated worker counts to cross-check")
	repeats := flag.Int("repeats", 2, "runs per worker count")
	flag.Parse()

	var counts []int
	for _, part := range strings.Split(*workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "replaycheck: bad -workers entry %q\n", part)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	divs, err := conformance.RunReplay(conformance.ReplayConfig{
		Sites:   *sites,
		Seed:    *seed,
		Workers: counts,
		Repeats: *repeats,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "replaycheck:", err)
		os.Exit(1)
	}
	runs := len(counts) * *repeats
	if len(divs) > 0 {
		for _, d := range divs {
			fmt.Fprintln(os.Stderr, "replaycheck: DIVERGENCE:", d.String())
		}
		fmt.Fprintf(os.Stderr, "replaycheck: %d divergences across %d runs\n", len(divs), runs)
		os.Exit(1)
	}
	fmt.Printf("replaycheck: %d runs (workers %s × %d repeats, %d sites, seed %d): all artifacts byte-identical\n",
		runs, *workers, *repeats, *sites, *seed)
}
