// Command cdnsim runs the §5 deployment experiment: certificate
// reissue (Figure 6), IP-based coalescing with passive and active
// measurement (§5.2, Figure 7a), and the ORIGIN-frame deployment with
// its longitudinal view (§5.3, Figures 7b and 8) plus the PLT
// comparison (Figure 9 bottom).
//
// Usage:
//
//	cdnsim -sample 5000 -phase all
//	cdnsim -sample 2000 -phase origin
//	cdnsim -sample 2000 -faults reset=0.05,dnsfail=0.01,loss=2 -retries 2
//	cdnsim -sample 2000 -faultsweep
//	cdnsim -matrix -sites 150 -workers 4
//	cdnsim -matrix -personas chrome,mobile -profiles wired,3g -out cells.ndjson
//
// With -matrix, cdnsim runs the scenario sweep instead: every selected
// client persona replays every page-archetype corpus under every
// network profile and resolver transport, and the "who coalesces, who
// shards, what it costs" table is printed (cell NDJSON goes to -out).
// The sweep is byte-identical at any -workers count.
// With -faults, every visit samples the given degradation plan from a
// seeded stream independent of the experiment's own randomness; the
// same seed and plan reproduce the run byte for byte, and an empty plan
// leaves every output identical to a fault-free run.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	_ "net/http/pprof"

	"respectorigin/internal/cache"
	"respectorigin/internal/cliflags"
	"respectorigin/internal/cdn"
	"respectorigin/internal/core"
	"respectorigin/internal/faults"
	"respectorigin/internal/netsim"
	"respectorigin/internal/obs"
	"respectorigin/internal/report"
	"respectorigin/internal/scenario"
)

// cacheOptions maps the warm-path flag values onto cache.Options.
func cacheOptions(ticketLifetimeSeconds int) cache.Options {
	opts := cache.Options{TicketLifetimeSeconds: ticketLifetimeSeconds}
	if ticketLifetimeSeconds == 0 {
		opts.TicketLifetimeSeconds = cache.TicketsDisabled
	}
	return opts
}

func main() {
	sample := flag.Int("sample", 5000, "candidate sample domains (paper: 5000)")
	seed := cliflags.Seed(1)
	phase := flag.String("phase", "all", "ip | origin | passive | all")
	days := flag.Int("days", 28, "longitudinal window in days")
	faultSpec := flag.String("faults", "", "fault plan, e.g. reset=0.05,dnsfail=0.01,stale=0.02,loss=2 (empty: none)")
	retries := flag.Int("retries", 1, "browser retry budget under a nonzero fault plan")
	sweep := flag.Bool("faultsweep", false, "run the Figure 8 fault sweep (reset rates 0/1/5%) and exit")
	traceOut := flag.String("trace", "", "write per-visit trace events as NDJSON to this file (- for stdout)")
	metricsAddr := flag.String("metrics-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof) on this address during the run")
	cacheOn := flag.Bool("cache", false, "enable the warm-path client cache and print the warm/cold savings table")
	revisits := flag.Int("revisits", 1, "visits per zone in the warm/cold measurement (with -cache)")
	ticketLife := flag.Int("ticket-lifetime", cache.DefaultTicketLifetimeSeconds, "TLS session-ticket lifetime in seconds (0 disables resumption)")
	protoName := flag.String("proto", "h2", "application protocol for the warm/cold measurement (h1, h2, h3)")
	protoSweep := flag.Bool("proto-sweep", false, "print the per-protocol (h1/h2/h3) savings decomposition for the deployment sample and exit")
	matrix := flag.Bool("matrix", false, "run the persona × archetype × profile × transport scenario sweep and exit")
	sites := cliflags.Sites(150)
	workers := cliflags.Workers(0)
	personas := flag.String("personas", "", "with -matrix: comma-separated persona selector (chrome, safari, mobile; empty: all)")
	archetypes := flag.String("archetypes", "", "with -matrix: comma-separated page-archetype selector (baseline, sharded, migration; empty: all)")
	profiles := flag.String("profiles", "", "with -matrix: comma-separated network-profile selector (wired, 4g, 3g, satellite; empty: all)")
	dns := flag.String("dns", "", "with -matrix: comma-separated resolver-transport selector (do53, doh; empty: both)")
	matrixOut := cliflags.Out("", "matrix cell NDJSON (with -matrix; empty: table only)")
	flag.Parse()

	if *matrix {
		cfg, err := scenario.ConfigFromSelectors(*seed, *sites, *workers, *personas, *archetypes, *profiles, *dns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdnsim: %v\n", err)
			os.Exit(2)
		}
		res, err := scenario.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdnsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Table())
		if *matrixOut != "" {
			out, err := cliflags.OpenOutput(*matrixOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cdnsim: %v\n", err)
				os.Exit(1)
			}
			err = res.WriteNDJSON(out)
			if cerr := out.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "cdnsim: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	plan, err := faults.ParsePlan(*faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdnsim: %v\n", err)
		os.Exit(2)
	}
	proto, err := core.ParseProtocol(*protoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdnsim: %v\n", err)
		os.Exit(2)
	}

	if *sweep {
		start, end := *days/4, *days*3/4
		fmt.Println(report.FaultSweep(*sample, *seed, *days, start, end, []float64{0, 1, 5}))
		return
	}

	var trace *obs.Trace
	var recs []obs.Recorder
	if *traceOut != "" {
		trace = obs.NewTrace()
		recs = append(recs, trace)
	}
	if *metricsAddr != "" {
		metrics := obs.NewMetrics()
		metrics.PublishExpvar("cdnsim")
		recs = append(recs, metrics)
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "cdnsim: metrics server: %v\n", err)
			}
		}()
	}

	sessOpts := []core.SessionOption{
		core.WithRecorder(obs.Multi(recs...)),
		core.WithFaults(plan, *retries),
	}
	if *cacheOn {
		sessOpts = append(sessOpts, core.WithCache(cacheOptions(*ticketLife)))
	}
	sess := core.NewSession(*seed, sessOpts...)
	d := report.NewDeploymentSession(*sample, sess)

	if *protoSweep {
		sweep := d.ProtoSweep(*revisits, cacheOptions(*ticketLife))
		fmt.Print(report.ProtoSweepTable(sweep, netsim.DefaultParams(), "deployment sample, IP phase"))
		return
	}

	fmt.Println(d.Figure6())

	runIP := *phase == "ip" || *phase == "all"
	runOrigin := *phase == "origin" || *phase == "all"
	runPassive := *phase == "passive" || *phase == "all"

	if runIP {
		_, _, txt := d.Figure7(cdn.PhaseIP)
		fmt.Println(txt)
	}
	if runPassive {
		_, txt := d.PassiveIP(5)
		fmt.Println(txt)
	}
	if runOrigin {
		_, _, txt := d.Figure7(cdn.PhaseOrigin)
		fmt.Println(txt)
		start, end := *days/4, *days*3/4
		_, _, txt8 := d.Figure8(*days, start, end)
		fmt.Println(txt8)
		_, txt9 := d.Figure9Deployment(*seed)
		fmt.Println(txt9)
	}
	if !runIP && !runOrigin && !runPassive {
		fmt.Fprintf(os.Stderr, "cdnsim: unknown phase %q\n", *phase)
		os.Exit(1)
	}
	if !plan.Zero() {
		fmt.Println(d.FaultReport())
	}
	if *cacheOn {
		// Runs last: the warm/cold pass touches neither the pipeline
		// nor the experiment RNG, so earlier output is unaffected.
		costs := d.WarmColdProto(*revisits, sess.CacheOpts, proto)
		label := "deployment sample, IP phase"
		if proto != core.ProtoH2 {
			label += ", " + proto.String()
		}
		fmt.Println(report.SavingsTable(costs, label))
	}
	if trace != nil {
		w := os.Stdout
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cdnsim: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := trace.WriteNDJSON(w); err != nil {
			fmt.Fprintf(os.Stderr, "cdnsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cdnsim: %d trace events -> %s\n", trace.Len(), *traceOut)
	}
}
